// Package tenant multiplexes many independent descriptor spaces over
// one decision daemon: an image registry in which every loaded machine
// image becomes a tenant with its own service.Store shard group, its
// own decision worker pool, and its own bounded queue.
//
// The paper's ring hardware multiplexes many mutually-suspicious
// protection domains over a single validation mechanism; the modern
// form of that idea (Complets' POE compartments, Capacity's per-domain
// capability spaces — see PAPERS.md) is many small protection domains
// served by one enforcement engine. A tenant here is exactly such a
// compartment: a complete descriptor space whose decisions never read
// another tenant's descriptors, whose worker quota bounds the CPU it
// can consume, and whose bounded queue sheds its own overload instead
// of exporting it to its neighbours.
//
// # Lifecycle
//
// A tenant moves through a one-way state machine:
//
//		loading → active → sealed ─┐
//		            │              │
//		            └──────→ draining → evicted
//
//	  - loading: the image is being parsed and its store built; the
//	    tenant is registered (so a duplicate load fails fast) but serves
//	    nothing yet.
//	  - active: decisions and supervisor mutations are served.
//	  - sealed: the descriptor space is frozen — decisions are served,
//	    mutations answer ErrSealed (HTTP 409). Sealing is the service
//	    analogue of handing a subsystem a read-only descriptor segment.
//	  - draining: eviction has begun — no new batches are accepted
//	    (ErrDraining, HTTP 409 for mutations), queued batches complete,
//	    and the worker pool shuts down, which unregisters every RCU
//	    reader and lets the store's grace periods complete.
//	  - evicted: the tenant is gone from the registry; its store is
//	    unreachable and collectable.
//
// # Isolation
//
// Each tenant owns a full service.Service: its own worker goroutines,
// its own bounded batch queue, its own RCU reader registrations. A hot
// tenant that saturates its quota fills its own queue and sheds with
// ErrQueueFull; tenants on other worker pools keep deciding at their
// own pace (experiment T15 measures exactly this). The registry's
// worker budget bounds the total goroutine count so loading tenants
// cannot oversubscribe the host.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/service"
)

// State is a tenant's lifecycle state.
type State int32

const (
	// StateLoading marks a tenant whose image is still being built.
	StateLoading State = iota
	// StateActive marks a tenant serving decisions and mutations.
	StateActive
	// StateSealed marks a frozen descriptor space: decisions are
	// served, mutations are rejected.
	StateSealed
	// StateDraining marks a tenant whose eviction has begun: queued
	// batches complete, new work is rejected.
	StateDraining
	// StateEvicted marks a tenant removed from the registry.
	StateEvicted
)

// String returns the wire name of the state.
func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateActive:
		return "active"
	case StateSealed:
		return "sealed"
	case StateDraining:
		return "draining"
	case StateEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// Registry errors.
var (
	// ErrTenantExists reports a load under a name already registered.
	ErrTenantExists = errors.New("tenant: name already loaded")
	// ErrTenantNotFound reports an operation on an unknown tenant.
	ErrTenantNotFound = errors.New("tenant: not found")
	// ErrSealed reports a mutation against a sealed tenant.
	ErrSealed = errors.New("tenant: image is sealed")
	// ErrDraining reports work submitted while an eviction drains the
	// tenant — the mutation-races-drain conflict (HTTP 409).
	ErrDraining = errors.New("tenant: draining")
	// ErrLoading reports work submitted before a load completed.
	ErrLoading = errors.New("tenant: still loading")
	// ErrWorkerBudget reports a load whose worker quota would exceed
	// the registry's budget.
	ErrWorkerBudget = errors.New("tenant: worker budget exhausted")
	// ErrTooManyTenants reports a load beyond Config.MaxTenants.
	ErrTooManyTenants = errors.New("tenant: registry full")
	// ErrBadName reports an unusable tenant name.
	ErrBadName = errors.New("tenant: bad name")
)

// TenantConfig sizes one tenant's decision service. Zero fields take
// the registry's defaults.
type TenantConfig struct {
	// Workers is the tenant's decision worker quota — the number of
	// goroutines (one snapshot-reading MMU each) it may occupy.
	Workers int
	// QueueDepth bounds the tenant's batch queue; overload sheds with
	// service.ErrQueueFull instead of starving other tenants.
	QueueDepth int
	// BatchLimit caps queries per batch.
	BatchLimit int
	// Shards is the tenant store's descriptor shard count.
	Shards int
}

// Config sizes a Registry.
type Config struct {
	// MaxTenants bounds the number of simultaneously loaded images;
	// default 16.
	MaxTenants int
	// WorkerBudget bounds the sum of all tenants' worker quotas;
	// default 64.
	WorkerBudget int
	// Defaults fills zero fields of each load's TenantConfig; its own
	// zero fields fall back to 2 workers and the service defaults.
	Defaults TenantConfig
}

// Tenant is one loaded image: a complete descriptor space with its own
// decision service, queue, and lifecycle state.
type Tenant struct {
	name  string
	cfg   TenantConfig
	state atomic.Int32

	store *service.Store
	svc   *service.Service
	srv   *service.Server
	// hub fans descriptor mutations out to wire-session lease
	// subscribers (leases.go); published with the same
	// assign-then-activate discipline as store/svc.
	hub *leaseHub

	// deniedMutations counts mutations rejected by seal or drain —
	// the tenant-level conflict counter surfaced in /v1/images.
	deniedMutations atomic.Uint64
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// State returns the tenant's current lifecycle state.
func (t *Tenant) State() State { return State(t.state.Load()) }

// Store returns the tenant's descriptor store, or nil while loading.
func (t *Tenant) Store() *service.Store { return t.store }

// Service returns the tenant's decision service, or nil while loading.
func (t *Tenant) Service() *service.Service { return t.svc }

// Server returns the tenant's HTTP face (the single-tenant wire
// format, served under /v1/t/{name}/ by the registry handler), or nil
// while loading.
func (t *Tenant) Server() *service.Server { return t.srv }

// Config returns the tenant's resolved sizing.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// DeniedMutations returns the count of mutations rejected by seal or
// drain.
func (t *Tenant) DeniedMutations() uint64 { return t.deniedMutations.Load() }

// checkable returns nil when the tenant serves decisions in its
// current state, or the rejection error.
//
//ring:hotpath
func (t *Tenant) checkable() error {
	switch t.State() {
	case StateActive, StateSealed:
		return nil
	case StateLoading:
		return ErrLoading
	case StateDraining:
		return ErrDraining
	default:
		return ErrTenantNotFound
	}
}

// SubmitInto answers a batch of queries in place (dst[i] answers
// queries[i]) through the tenant's worker pool. One atomic state load
// guards the tenant lifecycle; beyond that the call is exactly the
// zero-allocation service.SubmitInto hot path, so the per-tenant check
// path stays 0 allocs/op (gated by TestTenantCheckZeroAlloc).
//
//ring:hotpath
func (t *Tenant) SubmitInto(ctx context.Context, queries []service.Query, dst []service.Decision) error {
	if err := t.checkable(); err != nil {
		return err
	}
	return t.svc.SubmitInto(ctx, queries, dst)
}

// Submit answers a batch of queries, allocating the decision slice.
func (t *Tenant) Submit(ctx context.Context, queries []service.Query) ([]service.Decision, error) {
	if err := t.checkable(); err != nil {
		return nil, err
	}
	return t.svc.Submit(ctx, queries)
}

// Mutable returns nil when the tenant accepts supervisor mutations,
// or the rejection error (ErrSealed, ErrDraining, ErrLoading,
// ErrTenantNotFound); rejections are counted in DeniedMutations. Both
// the HTTP mutate route and the binary wire protocol gate mutations
// through it, so seal/drain races answer the same way on either
// transport.
func (t *Tenant) Mutable() error { return t.mutable() }

// mutable returns nil when the tenant accepts supervisor mutations,
// or the rejection error; rejections are counted.
func (t *Tenant) mutable() error {
	switch t.State() {
	case StateActive:
		return nil
	case StateSealed:
		t.deniedMutations.Add(1)
		return ErrSealed
	case StateLoading:
		return ErrLoading
	case StateDraining:
		t.deniedMutations.Add(1)
		return ErrDraining
	default:
		return ErrTenantNotFound
	}
}

// Registry is the image registry: the set of loaded tenants, their
// shared worker budget, and the default tenant the single-tenant API
// routes to.
type Registry struct {
	cfg Config

	mu           sync.RWMutex
	tenants      map[string]*Tenant //ring:guarded mu
	order        []string           //ring:guarded mu (load order, for stable listings)
	workersInUse int                //ring:guarded mu
	evictions    uint64             //ring:guarded mu (completed evictions)
}

// DefaultTenant is the name the single-tenant endpoints (/v1/check,
// /v1/mutate, /healthz, /metrics) route to.
const DefaultTenant = "default"

// NewRegistry builds an empty registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 16
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = 64
	}
	if cfg.Defaults.Workers <= 0 {
		cfg.Defaults.Workers = 2
	}
	return &Registry{cfg: cfg, tenants: make(map[string]*Tenant)}
}

// Config returns the registry's resolved sizing.
func (r *Registry) Config() Config { return r.cfg }

// ValidName reports whether name is usable as a tenant name: non-empty,
// at most 64 bytes, and free of '/' and whitespace (it becomes a URL
// path element).
func ValidName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	return !strings.ContainsAny(name, "/ \t\r\n")
}

// resolve fills cfg's zero fields from the registry defaults.
func (r *Registry) resolve(cfg TenantConfig) TenantConfig {
	d := r.cfg.Defaults
	if cfg.Workers <= 0 {
		cfg.Workers = d.Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = d.QueueDepth
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = d.BatchLimit
	}
	if cfg.Shards <= 0 {
		cfg.Shards = d.Shards
	}
	return cfg
}

// Load builds a new tenant named name from the image segments and
// registers it. The name is claimed (state loading) before the store
// is built, so concurrent duplicate loads fail fast with
// ErrTenantExists; a failed build releases the name and the worker
// quota. On success the tenant is active.
func (r *Registry) Load(name string, segs []service.Segment, cfg TenantConfig) (*Tenant, error) {
	if !ValidName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	cfg = r.resolve(cfg)

	t := &Tenant{name: name, cfg: cfg}
	t.state.Store(int32(StateLoading))

	r.mu.Lock()
	if _, dup := r.tenants[name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, name)
	}
	if len(r.tenants) >= r.cfg.MaxTenants {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d images loaded", ErrTooManyTenants, r.cfg.MaxTenants)
	}
	if r.workersInUse+cfg.Workers > r.cfg.WorkerBudget {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d in use + %d requested > budget %d",
			ErrWorkerBudget, r.workersInUse, cfg.Workers, r.cfg.WorkerBudget)
	}
	r.tenants[name] = t
	r.order = append(r.order, name)
	r.workersInUse += cfg.Workers
	r.mu.Unlock()

	st, err := service.NewStore(service.StoreConfig{Shards: cfg.Shards}, segs)
	if err == nil {
		t.store = st
		t.svc, err = service.New(st, service.Config{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			BatchLimit: cfg.BatchLimit,
		})
	}
	if err != nil {
		t.state.Store(int32(StateEvicted))
		r.unregister(t)
		return nil, fmt.Errorf("tenant %q: %w", name, err)
	}
	t.srv = service.NewServer(t.svc)
	t.hub = newLeaseHub(st.Shards())
	st.SetPublishHook(t.hub.broadcast)
	t.state.Store(int32(StateActive))
	return t, nil
}

// unregister removes t from the map and returns its worker quota to
// the budget (idempotent).
func (r *Registry) unregister(t *Tenant) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tenants[t.name] != t {
		return
	}
	delete(r.tenants, t.name)
	for i, n := range r.order {
		if n == t.name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.workersInUse -= t.cfg.Workers
	r.evictions++
}

// Get returns the named tenant.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[name]
	return t, ok
}

// Tenants returns the loaded tenants in load order.
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Tenant, 0, len(r.order))
	for _, n := range r.order {
		if t, ok := r.tenants[n]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Len returns the number of loaded tenants.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// WorkersInUse returns the sum of loaded tenants' worker quotas.
func (r *Registry) WorkersInUse() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.workersInUse
}

// Evictions returns the number of completed evictions.
func (r *Registry) Evictions() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.evictions
}

// Seal freezes the named tenant's descriptor space: decisions keep
// flowing, mutations answer ErrSealed from now on. Only an active
// tenant can be sealed.
func (r *Registry) Seal(name string) error {
	t, ok := r.Get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, name)
	}
	if !t.state.CompareAndSwap(int32(StateActive), int32(StateSealed)) {
		return fmt.Errorf("tenant %q: cannot seal while %s", name, t.State())
	}
	return nil
}

// Evict removes the named tenant: the state moves to draining (new
// work is rejected from that instant), every queued batch completes,
// the worker pool exits — unregistering its RCU readers, so the
// store's snapshot grace periods complete — and the name is released.
// Evict returns after the drain; a concurrent Evict of the same tenant
// returns ErrDraining immediately.
func (r *Registry) Evict(name string) error {
	t, ok := r.Get(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, name)
	}
	if !t.state.CompareAndSwap(int32(StateActive), int32(StateDraining)) &&
		!t.state.CompareAndSwap(int32(StateSealed), int32(StateDraining)) {
		switch t.State() {
		case StateDraining:
			return fmt.Errorf("%w: %q", ErrDraining, name)
		default:
			return fmt.Errorf("tenant %q: cannot evict while %s", name, t.State())
		}
	}
	// Revoke every decision lease before the drain: subscribers hear
	// the expiration (and drop their caches) rather than riding a TTL
	// out against a store about to disappear. Sealing, by contrast,
	// leaves leases valid — a frozen descriptor space can never
	// invalidate them.
	if t.hub != nil {
		t.hub.close()
	}
	// Drain outside any registry lock: Close waits for the workers to
	// finish every queued batch and then releases their snapshot
	// readers, completing the RCU grace period.
	t.svc.Close()
	t.state.Store(int32(StateEvicted))
	r.unregister(t)
	return nil
}

// Close evicts every tenant (used at daemon shutdown); safe to call
// concurrently with serving.
func (r *Registry) Close() {
	for {
		ts := r.Tenants()
		if len(ts) == 0 {
			return
		}
		for _, t := range ts {
			// Best effort: concurrent evictions race benignly.
			_ = r.Evict(t.Name())
		}
	}
}

// TenantStatus is one tenant's row in a registry listing.
type TenantStatus struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Segments int    `json:"segments"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"`
	QueueCap int    `json:"queue_cap"`
	QueueLen int    `json:"queue_len"`
	// Version is the tenant store's mutation activity counter.
	Version uint64 `json:"version"`
	// Queries and Rejected are the tenant's decision and backpressure
	// counters; DeniedMutations counts seal/drain conflicts.
	Queries         uint64 `json:"queries"`
	Rejected        uint64 `json:"rejected"`
	DeniedMutations uint64 `json:"denied_mutations"`
}

// Status returns the tenant's listing row.
func (t *Tenant) Status() TenantStatus {
	s := TenantStatus{
		Name:            t.name,
		State:           t.State().String(),
		Workers:         t.cfg.Workers,
		DeniedMutations: t.deniedMutations.Load(),
	}
	if t.svc != nil {
		snap := t.svc.Snapshot()
		s.Segments = len(t.store.Segments())
		s.Shards = t.store.Shards()
		s.QueueCap = snap.QueueCap
		s.QueueLen = snap.QueueLen
		s.Version = snap.Version
		s.Queries = snap.Queries
		s.Rejected = snap.Rejected
	}
	return s
}

// RegistryStatus is the /v1/images listing: every tenant plus the
// registry-wide budget counters.
type RegistryStatus struct {
	Tenants      []TenantStatus `json:"tenants"`
	MaxTenants   int            `json:"max_tenants"`
	WorkerBudget int            `json:"worker_budget"`
	WorkersInUse int            `json:"workers_in_use"`
	Evictions    uint64         `json:"evictions"`
}

// Status assembles the registry listing, tenants sorted by name for a
// stable wire shape.
func (r *Registry) Status() RegistryStatus {
	ts := r.Tenants()
	out := RegistryStatus{
		Tenants:      make([]TenantStatus, 0, len(ts)),
		MaxTenants:   r.cfg.MaxTenants,
		WorkerBudget: r.cfg.WorkerBudget,
		WorkersInUse: r.WorkersInUse(),
		Evictions:    r.Evictions(),
	}
	for _, t := range ts {
		out.Tenants = append(out.Tenants, t.Status())
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Name < out.Tenants[j].Name })
	return out
}
