package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// testImage mirrors the service package's test segments so decisions
// taken through a tenant match the ones pinned there.
func testImage() []service.Segment {
	return []service.Segment{
		{Name: "data", Size: 16, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 32, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
		{Name: "secret", Size: 8, Read: true,
			Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}},
	}
}

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r := NewRegistry(cfg)
	t.Cleanup(r.Close)
	return r
}

func mustLoad(t *testing.T, r *Registry, name string, cfg TenantConfig) *Tenant {
	t.Helper()
	tn, err := r.Load(name, testImage(), cfg)
	if err != nil {
		t.Fatalf("Load(%q): %v", name, err)
	}
	return tn
}

func TestLoadAndSubmit(t *testing.T) {
	r := newTestRegistry(t, Config{})
	tn := mustLoad(t, r, "alpha", TenantConfig{Workers: 1})

	if got := tn.State(); got != StateActive {
		t.Fatalf("state after load = %v, want active", got)
	}
	ds, err := tn.Submit(context.Background(), []service.Query{
		{Op: service.OpAccess, Ring: 4, Segment: "data", Kind: core.AccessRead},
		{Op: service.OpAccess, Ring: 7, Segment: "secret", Kind: core.AccessRead},
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !ds[0].Allowed || ds[1].Allowed {
		t.Errorf("decisions: %+v", ds)
	}
	if r.Len() != 1 || r.WorkersInUse() != 1 {
		t.Errorf("registry: len %d workers %d, want 1/1", r.Len(), r.WorkersInUse())
	}
}

func TestDuplicateTenantName(t *testing.T) {
	r := newTestRegistry(t, Config{})
	mustLoad(t, r, "dup", TenantConfig{Workers: 1})

	if _, err := r.Load("dup", testImage(), TenantConfig{Workers: 1}); !errors.Is(err, ErrTenantExists) {
		t.Errorf("duplicate load: %v, want ErrTenantExists", err)
	}
	// The failed duplicate must not have touched the budget.
	if got := r.WorkersInUse(); got != 1 {
		t.Errorf("workers in use after duplicate = %d, want 1", got)
	}

	// Concurrent loads of one fresh name: exactly one wins.
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Load("race", testImage(), TenantConfig{Workers: 1})
		}(i)
	}
	wg.Wait()
	won := 0
	for _, err := range errs {
		switch {
		case err == nil:
			won++
		case !errors.Is(err, ErrTenantExists):
			t.Errorf("concurrent load: %v, want nil or ErrTenantExists", err)
		}
	}
	if won != 1 {
		t.Errorf("%d concurrent loads won the name, want exactly 1", won)
	}
}

func TestBadTenantName(t *testing.T) {
	r := newTestRegistry(t, Config{})
	for _, name := range []string{"", "a/b", "a b", "a\tb", "a\nb", string(make([]byte, 65))} {
		if _, err := r.Load(name, testImage(), TenantConfig{}); !errors.Is(err, ErrBadName) {
			t.Errorf("Load(%q): %v, want ErrBadName", name, err)
		}
	}
}

func TestWorkerBudget(t *testing.T) {
	r := newTestRegistry(t, Config{WorkerBudget: 3})
	mustLoad(t, r, "a", TenantConfig{Workers: 2})

	if _, err := r.Load("b", testImage(), TenantConfig{Workers: 2}); !errors.Is(err, ErrWorkerBudget) {
		t.Fatalf("over-budget load: %v, want ErrWorkerBudget", err)
	}
	// Evicting returns the quota; the same load then fits.
	if err := r.Evict("a"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	if got := r.WorkersInUse(); got != 0 {
		t.Fatalf("workers in use after evict = %d, want 0", got)
	}
	mustLoad(t, r, "b", TenantConfig{Workers: 2})
}

func TestMaxTenants(t *testing.T) {
	r := newTestRegistry(t, Config{MaxTenants: 2})
	mustLoad(t, r, "a", TenantConfig{Workers: 1})
	mustLoad(t, r, "b", TenantConfig{Workers: 1})
	if _, err := r.Load("c", testImage(), TenantConfig{Workers: 1}); !errors.Is(err, ErrTooManyTenants) {
		t.Errorf("third load: %v, want ErrTooManyTenants", err)
	}
}

func TestSealFreezesMutationsNotDecisions(t *testing.T) {
	r := newTestRegistry(t, Config{})
	tn := mustLoad(t, r, "frozen", TenantConfig{Workers: 1})

	if err := r.Seal("frozen"); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if got := tn.State(); got != StateSealed {
		t.Fatalf("state after seal = %v", got)
	}
	// Decisions keep flowing.
	if _, err := tn.Submit(context.Background(), []service.Query{
		{Op: service.OpAccess, Ring: 4, Segment: "data", Kind: core.AccessRead},
	}); err != nil {
		t.Errorf("Submit on sealed tenant: %v", err)
	}
	// Mutations are rejected and counted.
	if err := tn.mutable(); !errors.Is(err, ErrSealed) {
		t.Errorf("mutable on sealed tenant: %v, want ErrSealed", err)
	}
	if got := tn.DeniedMutations(); got != 1 {
		t.Errorf("denied mutations = %d, want 1", got)
	}
	// Sealing twice fails; sealing an unknown tenant is not found.
	if err := r.Seal("frozen"); err == nil {
		t.Error("second Seal: want error")
	}
	if err := r.Seal("ghost"); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("Seal(ghost): %v, want ErrTenantNotFound", err)
	}
	// A sealed tenant can still be evicted.
	if err := r.Evict("frozen"); err != nil {
		t.Errorf("Evict sealed: %v", err)
	}
}

// TestEvictWhileReadersPinned is the lifecycle edge the RCU design
// exists for: eviction while decision batches are in flight must wait
// for every pinned snapshot reader to unpin (the grace period) before
// the store is abandoned. After Evict returns, the store must report
// zero registered readers.
func TestEvictWhileReadersPinned(t *testing.T) {
	r := newTestRegistry(t, Config{})
	tn := mustLoad(t, r, "busy", TenantConfig{Workers: 4, QueueDepth: 32})
	st := tn.Store()

	// Hammer the tenant from several goroutines so batches are pinned
	// (each worker pins one snapshot reader per shard per batch) while
	// the eviction races them.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			queries := []service.Query{
				{Op: service.OpAccess, Ring: 4, Segment: "data", Kind: core.AccessRead},
				{Op: service.OpCall, Ring: 4, Segment: "code", Wordno: 1},
			}
			dst := make([]service.Decision, len(queries))
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := tn.SubmitInto(ctx, queries, dst)
				switch {
				case err == nil,
					errors.Is(err, service.ErrQueueFull),
					errors.Is(err, service.ErrClosed),
					errors.Is(err, ErrDraining),
					errors.Is(err, ErrTenantNotFound):
				default:
					t.Errorf("SubmitInto during drain: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let the load build
	if err := r.Evict("busy"); err != nil {
		t.Fatalf("Evict under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if got := tn.State(); got != StateEvicted {
		t.Errorf("state after evict = %v, want evicted", got)
	}
	if got := st.RCUStats().Readers; got != 0 {
		t.Errorf("store still has %d registered RCU readers after evict; grace period did not complete", got)
	}
	if _, ok := r.Get("busy"); ok {
		t.Error("evicted tenant still resolvable")
	}
	if got := r.Evictions(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// A second evict of the gone name is not found.
	if err := r.Evict("busy"); !errors.Is(err, ErrTenantNotFound) {
		t.Errorf("second Evict: %v, want ErrTenantNotFound", err)
	}
}

func TestCorruptImage(t *testing.T) {
	cases := map[string]string{
		"not json":         `{nope`,
		"no segments":      `{"segments": []}`,
		"invalid brackets": `{"segments": [{"name": "x", "size": 4, "read": true, "r1": 5, "r2": 2, "r3": 1}]}`,
	}
	for name, body := range cases {
		if _, err := ParseImage([]byte(body)); err == nil {
			t.Errorf("ParseImage(%s): want error", name)
		}
	}
	if _, err := LoadImageFile("/nonexistent/image.json"); err == nil {
		t.Error("LoadImageFile(missing): want error")
	}

	// A load that fails building the store must release the name and
	// the worker quota.
	r := newTestRegistry(t, Config{})
	if _, err := r.Load("broken", testImage(), TenantConfig{Workers: 1, Shards: 5}); err == nil {
		t.Fatal("Load with non-power-of-two shards: want error")
	}
	if r.Len() != 0 || r.WorkersInUse() != 0 {
		t.Errorf("failed load leaked registry state: len %d workers %d", r.Len(), r.WorkersInUse())
	}
	mustLoad(t, r, "broken", TenantConfig{Workers: 1}) // the name is free again
}

func TestRegistryCloseEvictsAll(t *testing.T) {
	r := NewRegistry(Config{})
	for i := 0; i < 3; i++ {
		if _, err := r.Load(fmt.Sprintf("t%d", i), testImage(), TenantConfig{Workers: 1}); err != nil {
			t.Fatalf("Load: %v", err)
		}
	}
	r.Close()
	if r.Len() != 0 || r.WorkersInUse() != 0 {
		t.Errorf("after Close: len %d workers %d, want 0/0", r.Len(), r.WorkersInUse())
	}
}

func TestRegistryStatus(t *testing.T) {
	r := newTestRegistry(t, Config{MaxTenants: 4, WorkerBudget: 8})
	mustLoad(t, r, "zeta", TenantConfig{Workers: 1})
	mustLoad(t, r, "alpha", TenantConfig{Workers: 2})

	s := r.Status()
	if len(s.Tenants) != 2 || s.Tenants[0].Name != "alpha" || s.Tenants[1].Name != "zeta" {
		t.Fatalf("tenants not sorted by name: %+v", s.Tenants)
	}
	if s.MaxTenants != 4 || s.WorkerBudget != 8 || s.WorkersInUse != 3 {
		t.Errorf("budget row: %+v", s)
	}
	if s.Tenants[0].State != "active" || s.Tenants[0].Segments != 3 || s.Tenants[0].Workers != 2 {
		t.Errorf("alpha row: %+v", s.Tenants[0])
	}
}

// TestTenantCheckZeroAlloc gates the tenant-scoped decision hot path:
// the lifecycle gate adds one atomic load to service.SubmitInto and
// nothing else — still 0 allocs/op.
func TestTenantCheckZeroAlloc(t *testing.T) {
	r := newTestRegistry(t, Config{})
	tn := mustLoad(t, r, "hot", TenantConfig{Workers: 1})

	ctx := context.Background()
	queries := []service.Query{{Op: service.OpAccess, Ring: 4, Segment: "data", Wordno: 5, Kind: core.AccessRead}}
	dst := make([]service.Decision, len(queries))
	for i := 0; i < 8; i++ { // warm the descriptor pool and the SDW cache
		if err := tn.SubmitInto(ctx, queries, dst); err != nil {
			t.Fatalf("warm-up SubmitInto: %v", err)
		}
	}
	if !dst[0].Allowed {
		t.Fatalf("warm-up decision wrong: %+v", dst[0])
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := tn.SubmitInto(ctx, queries, dst); err != nil {
			t.Fatalf("SubmitInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("tenant SubmitInto allocates %.2f objects per batch; the tenant-scoped hot path budget is 0", allocs)
	}
}
