// Package trace records structured execution events from the simulated
// processor: instruction fetches, effective-address steps, access
// validations, ring switches and traps. The ringsim CLI renders these
// for debugging, and the integration tests assert against them — e.g.
// that a downward call recorded a ring switch but no trap.
package trace

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
)

// Kind labels an event.
type Kind int

const (
	// KindFetch: an instruction was fetched.
	KindFetch Kind = iota
	// KindEA: one step of effective address formation (initial, PR
	// contribution, indirect word contribution).
	KindEA
	// KindValidate: an access validation was performed.
	KindValidate
	// KindRingSwitch: the ring of execution changed.
	KindRingSwitch
	// KindTrap: a trap was generated.
	KindTrap
	// KindExec: an instruction completed execution.
	KindExec
	// KindService: a supervisor service ran.
	KindService
)

func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindEA:
		return "ea"
	case KindValidate:
		return "validate"
	case KindRingSwitch:
		return "ring-switch"
	case KindTrap:
		return "trap"
	case KindExec:
		return "exec"
	case KindService:
		return "service"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Kind   Kind
	Ring   core.Ring // ring of execution (or effective ring for validations)
	Segno  uint32
	Wordno uint32
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("[%-11s] r%d (%o|%o) %s", e.Kind, e.Ring, e.Segno, e.Wordno, e.Detail)
}

// KindCount is the number of event kinds (for per-kind counters).
const KindCount = int(KindService) + 1

// Recorder receives events. Implementations must be cheap when disabled;
// the CPU holds a nil Recorder in benchmarks.
//
// The reference path consumes events through the richer mmu.Sink
// interface (Enabled + Record); every Recorder in this package also
// implements it, so a Buffer or Counters plugs directly into the
// processor.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory Recorder.
type Buffer struct {
	Events []Event
	// Limit, if positive, caps the number of retained events; further
	// events increment Dropped instead of growing the buffer.
	Limit   int
	Dropped int
}

// Enabled reports that the buffer accepts events (it always does; use
// Limit to bound retention).
func (b *Buffer) Enabled() bool { return true }

// Record appends the event, honouring Limit.
func (b *Buffer) Record(e Event) {
	if b.Limit > 0 && len(b.Events) >= b.Limit {
		b.Dropped++
		return
	}
	b.Events = append(b.Events, e)
}

// OfKind returns the recorded events of kind k, in order.
func (b *Buffer) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range b.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders all events, one per line.
func (b *Buffer) String() string {
	var sb strings.Builder
	for _, e := range b.Events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	if b.Dropped > 0 {
		fmt.Fprintf(&sb, "... %d events dropped\n", b.Dropped)
	}
	return sb.String()
}

// AtomicCounters is Counters for concurrent recorders: several
// processors (or service workers) can share one instance, and a
// monitoring goroutine can read the tallies while they record. Counts
// are maintained with atomic adds; reads are individually atomic (a
// snapshot across kinds is not a consistent cut, which is fine for
// monitoring).
type AtomicCounters struct {
	counts [KindCount]atomic.Uint64
	other  atomic.Uint64
}

// Enabled reports that the counters accept events.
func (c *AtomicCounters) Enabled() bool { return true }

// Record tallies the event.
func (c *AtomicCounters) Record(e Event) {
	if k := int(e.Kind); k >= 0 && k < KindCount {
		c.counts[k].Add(1)
		return
	}
	c.other.Add(1)
}

// Of returns the count for kind k.
func (c *AtomicCounters) Of(k Kind) uint64 {
	if i := int(k); i >= 0 && i < KindCount {
		return c.counts[i].Load()
	}
	return 0
}

// Total returns the number of events recorded.
func (c *AtomicCounters) Total() uint64 {
	t := c.other.Load()
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t
}

// Snapshot copies the per-kind counts into a plain Counters value.
func (c *AtomicCounters) Snapshot() Counters {
	var out Counters
	for i := range c.counts {
		out.Counts[i] = c.counts[i].Load()
	}
	out.Other = c.other.Load()
	return out
}

// Func adapts a function to the Recorder interface.
type Func func(Event)

// Enabled reports that the function wants events.
func (f Func) Enabled() bool { return true }

// Record calls f(e).
func (f Func) Record(e Event) { f(e) }

// Counters tallies events per kind without retaining them — the cheap
// always-on instrumentation point between full tracing and none. It
// implements both Recorder and the processor's sink interface.
type Counters struct {
	Counts [KindCount]uint64
	// Other counts events whose kind is outside the known range.
	Other uint64
}

// Enabled reports that the counters accept events.
func (c *Counters) Enabled() bool { return true }

// Record tallies the event.
func (c *Counters) Record(e Event) {
	if k := int(e.Kind); k >= 0 && k < KindCount {
		c.Counts[k]++
		return
	}
	c.Other++
}

// Total returns the number of events recorded.
func (c *Counters) Total() uint64 {
	t := c.Other
	for _, n := range c.Counts {
		t += n
	}
	return t
}

// Of returns the count for kind k.
func (c *Counters) Of(k Kind) uint64 {
	if i := int(k); i >= 0 && i < KindCount {
		return c.Counts[i]
	}
	return 0
}

// String renders the non-zero counters, one per line.
func (c *Counters) String() string {
	var sb strings.Builder
	for k := 0; k < KindCount; k++ {
		if c.Counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-11s %d\n", Kind(k), c.Counts[k])
	}
	if c.Other > 0 {
		fmt.Fprintf(&sb, "%-11s %d\n", "other", c.Other)
	}
	return sb.String()
}
