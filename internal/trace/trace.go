// Package trace records structured execution events from the simulated
// processor: instruction fetches, effective-address steps, access
// validations, ring switches and traps. The ringsim CLI renders these
// for debugging, and the integration tests assert against them — e.g.
// that a downward call recorded a ring switch but no trap.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Kind labels an event.
type Kind int

const (
	// KindFetch: an instruction was fetched.
	KindFetch Kind = iota
	// KindEA: one step of effective address formation (initial, PR
	// contribution, indirect word contribution).
	KindEA
	// KindValidate: an access validation was performed.
	KindValidate
	// KindRingSwitch: the ring of execution changed.
	KindRingSwitch
	// KindTrap: a trap was generated.
	KindTrap
	// KindExec: an instruction completed execution.
	KindExec
	// KindService: a supervisor service ran.
	KindService
)

func (k Kind) String() string {
	switch k {
	case KindFetch:
		return "fetch"
	case KindEA:
		return "ea"
	case KindValidate:
		return "validate"
	case KindRingSwitch:
		return "ring-switch"
	case KindTrap:
		return "trap"
	case KindExec:
		return "exec"
	case KindService:
		return "service"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	Kind   Kind
	Ring   core.Ring // ring of execution (or effective ring for validations)
	Segno  uint32
	Wordno uint32
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("[%-11s] r%d (%o|%o) %s", e.Kind, e.Ring, e.Segno, e.Wordno, e.Detail)
}

// Recorder receives events. Implementations must be cheap when disabled;
// the CPU holds a nil Recorder in benchmarks.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory Recorder.
type Buffer struct {
	Events []Event
	// Limit, if positive, caps the number of retained events; further
	// events increment Dropped instead of growing the buffer.
	Limit   int
	Dropped int
}

// Record appends the event, honouring Limit.
func (b *Buffer) Record(e Event) {
	if b.Limit > 0 && len(b.Events) >= b.Limit {
		b.Dropped++
		return
	}
	b.Events = append(b.Events, e)
}

// OfKind returns the recorded events of kind k, in order.
func (b *Buffer) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range b.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders all events, one per line.
func (b *Buffer) String() string {
	var sb strings.Builder
	for _, e := range b.Events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	if b.Dropped > 0 {
		fmt.Fprintf(&sb, "... %d events dropped\n", b.Dropped)
	}
	return sb.String()
}

// Func adapts a function to the Recorder interface.
type Func func(Event)

// Record calls f(e).
func (f Func) Record(e Event) { f(e) }
