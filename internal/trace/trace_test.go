package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestBufferRecordsInOrder(t *testing.T) {
	b := &Buffer{}
	b.Record(Event{Kind: KindFetch, Ring: 4, Segno: 1, Wordno: 2, Detail: "lda 5"})
	b.Record(Event{Kind: KindRingSwitch, Ring: 1, Detail: "call: ring 4 -> 1"})
	b.Record(Event{Kind: KindFetch, Ring: 1, Detail: "hlt"})
	if len(b.Events) != 3 {
		t.Fatalf("events: %d", len(b.Events))
	}
	fetches := b.OfKind(KindFetch)
	if len(fetches) != 2 || fetches[0].Detail != "lda 5" || fetches[1].Detail != "hlt" {
		t.Errorf("fetches: %v", fetches)
	}
	if len(b.OfKind(KindTrap)) != 0 {
		t.Error("phantom trap events")
	}
}

func TestBufferLimit(t *testing.T) {
	b := &Buffer{Limit: 2}
	for i := 0; i < 5; i++ {
		b.Record(Event{Kind: KindExec})
	}
	if len(b.Events) != 2 || b.Dropped != 3 {
		t.Errorf("events=%d dropped=%d", len(b.Events), b.Dropped)
	}
	if !strings.Contains(b.String(), "3 events dropped") {
		t.Error("dropped count not rendered")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: KindValidate, Ring: 5, Segno: 0o12, Wordno: 0o7, Detail: "read ok"}
	s := e.String()
	for _, want := range []string{"validate", "r5", "(12|7)", "read ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindFetch, KindEA, KindValidate, KindRingSwitch, KindTrap, KindExec, KindService}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") || seen[s] {
			t.Errorf("kind %d string %q", k, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(42).String(), "kind(") {
		t.Error("unknown kind string")
	}
}

func TestFuncRecorder(t *testing.T) {
	var got []Event
	r := Func(func(e Event) { got = append(got, e) })
	r.Record(Event{Kind: KindTrap, Detail: "x"})
	if len(got) != 1 || got[0].Detail != "x" {
		t.Errorf("func recorder: %v", got)
	}
}

// TestAtomicCounters checks the concurrent tally: several recorders
// sharing one instance must lose no events, and the snapshot must agree
// with the per-kind reads.
func TestAtomicCounters(t *testing.T) {
	var c AtomicCounters
	if !c.Enabled() {
		t.Fatal("AtomicCounters disabled")
	}
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Record(Event{Kind: KindValidate})
				c.Record(Event{Kind: KindTrap})
				c.Record(Event{Kind: Kind(99)})
			}
		}()
	}
	wg.Wait()
	if got := c.Of(KindValidate); got != workers*per {
		t.Errorf("validate count = %d, want %d", got, workers*per)
	}
	if got := c.Of(KindTrap); got != workers*per {
		t.Errorf("trap count = %d, want %d", got, workers*per)
	}
	if got := c.Total(); got != 3*workers*per {
		t.Errorf("total = %d, want %d", got, 3*workers*per)
	}
	snap := c.Snapshot()
	if snap.Of(KindValidate) != workers*per || snap.Other != workers*per {
		t.Errorf("snapshot = %+v", snap)
	}
	if c.Of(Kind(99)) != 0 {
		t.Errorf("out-of-range kind readable via Of")
	}
}
