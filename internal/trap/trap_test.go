package trap

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestCodeStrings(t *testing.T) {
	codes := []Code{
		None, AccessViolation, UpwardCall, DownwardReturn, MissingSegment,
		PrivilegedViolation, IllegalOpcode, StackFault, Supervisor, Halt,
		IndirectLimit,
	}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "trap(") {
			t.Errorf("code %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Code(99).String(), "trap(") {
		t.Error("unknown code string")
	}
}

func TestTrapError(t *testing.T) {
	tr := &Trap{
		Code:   AccessViolation,
		Ring:   4,
		Segno:  0o10,
		Wordno: 0o5,
		Violation: &core.Violation{
			Kind: core.ViolationWriteBracket,
			Ring: 4,
		},
	}
	msg := tr.Error()
	for _, want := range []string{"access violation", "write bracket", "(10|5)", "ring 4"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	bare := &Trap{Code: UpwardCall, Ring: 1, Segno: 2, Wordno: 3}
	if !strings.Contains(bare.Error(), "upward call") {
		t.Errorf("bare message: %q", bare.Error())
	}
}

func TestFromViolation(t *testing.T) {
	if got := FromViolation(&core.Violation{Kind: core.ViolationMissingSegment}); got != MissingSegment {
		t.Errorf("missing segment mapped to %v", got)
	}
	for _, k := range []core.ViolationKind{
		core.ViolationBound, core.ViolationNoRead, core.ViolationWriteBracket,
		core.ViolationNotAGate, core.ViolationRingAlarm,
	} {
		if got := FromViolation(&core.Violation{Kind: k}); got != AccessViolation {
			t.Errorf("%v mapped to %v", k, got)
		}
	}
}
