package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/service"
)

// ClientConfig configures Dial.
type ClientConfig struct {
	// Tenant is the tenant name the session binds to; "" means the
	// daemon's default tenant.
	Tenant string
	// MinVersion/MaxVersion is the offered protocol range; both default
	// to Version.
	MinVersion uint16
	MaxVersion uint16
	// MaxFrame bounds response payloads; default DefaultMaxFrame.
	MaxFrame uint32
	// DialTimeout bounds connection establishment and the handshake;
	// default 10s.
	DialTimeout time.Duration

	// OnShootdown, when set, receives every Shootdown push the server
	// sends after a Subscribe: the shard index, the advisory edited
	// segno, and the shard's new (even) publication epoch. Called on
	// the session's reader goroutine — it must not block and must not
	// call back into the client.
	OnShootdown func(sd Shootdown)
	// OnLeaseExpire receives the subscription-revoked push (same
	// constraints). After it fires no further shootdowns arrive on this
	// session.
	OnLeaseExpire func(le LeaseExpire)
	// OnClose, when set, is called exactly once when the session dies —
	// GoAway, connection failure, or Close — with the fatal error.
	// Everything a decision-lease cache holds from this session is
	// unverifiable from that instant, so this is where it drops.
	OnClose func(err error)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MinVersion == 0 {
		c.MinVersion = Version
	}
	if c.MaxVersion == 0 {
		c.MaxVersion = Version
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	return c
}

// Client is one streaming wire session. It is safe for concurrent
// use: calls from multiple goroutines pipeline on the single
// connection, correlated by ID, and may complete out of order — the
// intended way to keep every decision worker busy from one client
// process.
type Client struct {
	conn    net.Conn
	cfg     ClientConfig
	welcome Welcome

	wmu  sync.Mutex
	wbuf []byte //ring:guarded wmu (request encode scratch)

	mu       sync.Mutex
	nextCorr uint64           //ring:guarded mu
	pending  map[uint64]*call //ring:guarded mu
	fatal    error            //ring:guarded mu

	readerDone chan struct{}
}

// call is one request in flight.
type call struct {
	typ     FrameType // expected response type
	dst     []service.Decision
	version uint64
	health  Health
	err     error
	done    chan struct{}
}

// Dial opens a wire session to addr: TCP connect, Hello/Welcome
// handshake, response-reader start. A server rejection surfaces as
// *ErrFrame.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		cfg:        cfg,
		pending:    make(map[uint64]*call),
		readerDone: make(chan struct{}),
	}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) handshake() error {
	deadline := time.Now().Add(c.cfg.DialTimeout)
	_ = c.conn.SetDeadline(deadline)
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	b, err := EncodeHello(nil, Hello{
		MinVersion: c.cfg.MinVersion,
		MaxVersion: c.cfg.MaxVersion,
		Tenant:     c.cfg.Tenant,
	})
	if err != nil {
		return err
	}
	if _, err := c.conn.Write(b); err != nil {
		return err
	}
	var rbuf []byte
	h, payload, err := readFrame(c.conn, &rbuf, c.cfg.MaxFrame)
	if err != nil {
		return err
	}
	switch h.Type {
	case FrameWelcome:
		w, err := decodeWelcome(payload)
		if err != nil {
			return err
		}
		if w.Version < c.cfg.MinVersion || w.Version > c.cfg.MaxVersion {
			return ErrVersion
		}
		c.welcome = w
		return nil
	case FrameError:
		e, err := decodeError(payload)
		if err != nil {
			return err
		}
		return &e
	default:
		return ErrBadFrame
	}
}

// Welcome returns the handshake result: the negotiated version and
// the bound tenant's image shape.
func (c *Client) Welcome() Welcome { return c.welcome }

// Close tears the session down. In-flight calls fail with the
// connection error.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// readLoop dispatches response frames to their pending calls until
// the connection dies.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var rbuf []byte
	for {
		h, payload, err := readFrame(c.conn, &rbuf, c.cfg.MaxFrame)
		if err != nil {
			c.fail(err)
			return
		}
		switch {
		case h.Type == FrameGoAway:
			c.fail(ErrGoAway)
			return
		case h.Corr == 0:
			switch h.Type {
			case FrameShootdown:
				// Server push on a subscribed session: dispatch and keep
				// reading.
				sd, derr := decodeShootdown(payload)
				if derr != nil {
					c.fail(derr)
					return
				}
				if f := c.cfg.OnShootdown; f != nil {
					f(sd)
				}
				continue
			case FrameLeaseExpire:
				le, derr := decodeLeaseExpire(payload)
				if derr != nil {
					c.fail(derr)
					return
				}
				if f := c.cfg.OnLeaseExpire; f != nil {
					f(le)
				}
				continue
			case FrameError:
				// Session-level error: the server is about to close.
				if e, derr := decodeError(payload); derr == nil {
					ef := e
					c.fail(&ef)
					return
				}
			}
			c.fail(ErrBadFrame)
			return
		default:
			c.mu.Lock()
			cl := c.pending[h.Corr]
			delete(c.pending, h.Corr)
			c.mu.Unlock()
			if cl == nil {
				c.fail(ErrBadFrame)
				return
			}
			cl.complete(h.Type, payload)
		}
	}
}

// complete decodes one response into its call and wakes the waiter.
func (cl *call) complete(t FrameType, payload []byte) {
	defer close(cl.done)
	if t == FrameError {
		e, err := decodeError(payload)
		if err != nil {
			cl.err = err
			return
		}
		cl.err = &e
		return
	}
	if t != cl.typ {
		cl.err = ErrBadFrame
		return
	}
	switch t {
	case FrameDecisions:
		n, err := DecodeDecisionsInto(payload, cl.dst)
		if err != nil {
			cl.err = err
		} else if n != len(cl.dst) {
			cl.err = ErrBadFrame
		}
	case FrameMutated:
		if len(payload) != 8 {
			cl.err = ErrBadFrame
			return
		}
		cl.version = binary.BigEndian.Uint64(payload)
	case FramePong:
		cl.health, cl.err = decodePong(payload)
	default:
		cl.err = ErrBadFrame
	}
}

// fail terminates every pending call with err (first failure wins)
// and closes the connection.
func (c *Client) fail(err error) {
	c.mu.Lock()
	first := c.fatal == nil
	if first {
		c.fatal = err
	}
	err = c.fatal
	pending := c.pending
	c.pending = make(map[uint64]*call)
	c.mu.Unlock()
	if first && c.cfg.OnClose != nil {
		c.cfg.OnClose(err)
	}
	for _, cl := range pending {
		cl.err = err
		close(cl.done)
	}
	c.conn.Close()
}

// roundTrip registers a call, writes its request frame (encoded by
// enc into the shared scratch buffer under the write lock) and waits
// for the response.
func (c *Client) roundTrip(cl *call, enc func(buf []byte, corr uint64) ([]byte, error)) error {
	cl.done = make(chan struct{})
	c.mu.Lock()
	if c.fatal != nil {
		err := c.fatal
		c.mu.Unlock()
		return err
	}
	c.nextCorr++
	id := c.nextCorr
	c.pending[id] = cl
	c.mu.Unlock()

	c.wmu.Lock()
	b, err := enc(c.wbuf, id)
	var werr error
	if err == nil {
		c.wbuf = b
		_, werr = c.conn.Write(b)
	}
	c.wmu.Unlock()
	if err != nil || werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		if err != nil {
			return err
		}
		c.fail(werr)
		return werr
	}
	<-cl.done
	return cl.err
}

// CheckInto answers a batch of queries in place: dst[i] answers
// queries[i], and dst must hold at least len(queries) elements.
// Concurrent CheckInto calls pipeline on the session.
func (c *Client) CheckInto(queries []service.Query, dst []service.Decision) error {
	if len(dst) < len(queries) {
		return errors.New("wire: dst shorter than queries")
	}
	cl := &call{typ: FrameDecisions, dst: dst[:len(queries)]}
	return c.roundTrip(cl, func(buf []byte, corr uint64) ([]byte, error) {
		return EncodeCheck(buf, corr, queries)
	})
}

// Check answers a batch of queries, allocating the decision slice.
func (c *Client) Check(queries ...service.Query) ([]service.Decision, error) {
	dst := make([]service.Decision, len(queries))
	if err := c.CheckInto(queries, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// Mutate applies one supervisor mutation and returns the store
// version after it.
func (c *Client) Mutate(m Mutation) (uint64, error) {
	cl := &call{typ: FrameMutated}
	err := c.roundTrip(cl, func(buf []byte, corr uint64) ([]byte, error) {
		return EncodeMutate(buf, corr, m)
	})
	return cl.version, err
}

// Subscribe asks the server to push descriptor-invalidation events
// for the session's tenant to the config's OnShootdown/OnLeaseExpire
// handlers. The returned Health is the ack: its StoreVersion is the
// subscription's starting epoch sum — every mutation published after
// it will be announced. Idempotent.
func (c *Client) Subscribe() (Health, error) {
	cl := &call{typ: FramePong}
	err := c.roundTrip(cl, func(buf []byte, corr uint64) ([]byte, error) {
		return EncodeSubscribe(buf, corr), nil
	})
	return cl.health, err
}

// Ping probes liveness and returns the tenant's current image shape.
func (c *Client) Ping() (Health, error) {
	cl := &call{typ: FramePong}
	err := c.roundTrip(cl, func(buf []byte, corr uint64) ([]byte, error) {
		return EncodePing(buf, corr), nil
	})
	return cl.health, err
}
