package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/seg"
	"repro/internal/service"
	"repro/internal/word"
)

// Payload field widths. Queries and decisions are packed into the
// simulator's 36-bit words with the same field discipline as the
// instruction and SDW formats in internal/isa and internal/seg:
// segment numbers are seg.SegnoBits wide, word numbers seg.WordnoBits,
// rings three bits. Values outside those widths are not expressible on
// the wire; encoders reject them with ErrNotEncodable rather than
// silently truncating.
const (
	// maxQueryName bounds a segment name in a query or mutation
	// (7-bit length field in the query control word).
	maxQueryName = 127
	// maxString bounds the free-form strings (error messages, tenant
	// names) carried behind an 18-bit length word.
	maxString = 4096
	// wordBytes is the wire size of one 36-bit word: 8 bytes, big
	// endian, top 28 bits zero.
	wordBytes = 8
)

// Query op codes on the wire.
const (
	opAccess  = 1
	opCall    = 2
	opReturn  = 3
	opEffRing = 4
)

// Mutation op codes.
type MutOp uint32

const (
	// MutSetBrackets replaces a segment's flags, brackets and gates.
	MutSetBrackets MutOp = 1 + iota
	// MutRevoke clears a segment's present flag.
	MutRevoke
	// MutRestore re-sets a revoked segment's present flag.
	MutRestore
)

// outcomeName maps the 3-bit outcome code of a decision control word
// to the interned outcome strings of core.CallOutcome/ReturnOutcome;
// outcomeCode is the reverse map. Code 0 is the empty outcome (access
// and effring decisions, and denials).
var (
	outcomeName [7]string
	outcomeCode map[string]uint64
)

func init() {
	outcomeName[1] = core.CallSameRing.String()
	outcomeName[2] = core.CallDownward.String()
	outcomeName[3] = core.CallUpwardTrap.String()
	outcomeName[4] = core.ReturnSameRing.String()
	outcomeName[5] = core.ReturnUpward.String()
	outcomeName[6] = core.ReturnDownwardTrap.String()
	outcomeCode = make(map[string]uint64, 6)
	for i := 1; i < len(outcomeName); i++ {
		outcomeCode[outcomeName[i]] = uint64(i)
	}
}

// ensure returns a length-n buffer, reusing buf's storage when it is
// large enough. Steady-state sessions hit the reuse path; growth is
// the amortized-cold path.
//
//ring:hotpath
func ensure(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	//ring:allow buffer growth is amortized-cold; steady state reuses capacity
	return make([]byte, n)
}

// putWord writes one 36-bit word at off and returns the next offset.
//
//ring:hotpath
func putWord(b []byte, off int, w word.Word) int {
	binary.BigEndian.PutUint64(b[off:off+wordBytes], w.Uint64())
	return off + wordBytes
}

// getWord reads one 36-bit word at off, rejecting values with nonzero
// high bits.
//
//ring:hotpath
func getWord(b []byte, off int) (word.Word, error) {
	v := binary.BigEndian.Uint64(b[off : off+wordBytes])
	if v > word.Mask {
		return 0, ErrBadFrame
	}
	return word.Word(v), nil
}

// validString rejects strings the packed-character format cannot carry
// canonically: longer than max, or containing NUL (the padding
// character).
func validString(s string, max int) error {
	if len(s) > max {
		return ErrNotEncodable
	}
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return ErrNotEncodable
		}
	}
	return nil
}

// stringWords returns the number of words PackChars' convention needs
// for n characters.
//
//ring:hotpath
func stringWords(n int) int { return (n + 3) / 4 }

// putPackedString writes s as packed character words (four 9-bit
// characters per word, high first, NUL padded) and returns the next
// offset. The caller has validated s with validString.
//
//ring:hotpath
func putPackedString(b []byte, off int, s string) int {
	for i := 0; i < len(s); i += 4 {
		var w word.Word
		for j := 0; j < 4 && i+j < len(s); j++ {
			w = w.Deposit(uint(27-9*j), 9, uint64(s[i+j]))
		}
		off = putWord(b, off, w)
	}
	return off
}

// getPackedString reads an n-character packed string at off, enforcing
// canonical packing: every in-range character nonzero and at most one
// byte wide, every padding character zero. It returns the string and
// the next offset.
//
//ring:hotpath
func getPackedString(b []byte, off, n int) (string, int, error) {
	words := stringWords(n)
	if off+words*wordBytes > len(b) {
		return "", 0, ErrBadFrame
	}
	//ring:allow string decode allocates its result; segno-form frames carry no strings
	buf := make([]byte, n)
	for w := 0; w < words; w++ {
		wd, err := getWord(b, off)
		if err != nil {
			return "", 0, err
		}
		off += wordBytes
		for j := 0; j < 4; j++ {
			ch := wd.Field(uint(27-9*j), 9)
			idx := 4*w + j
			switch {
			case idx < n && (ch == 0 || ch > 0xFF):
				return "", 0, ErrBadFrame
			case idx < n:
				buf[idx] = byte(ch)
			case ch != 0:
				return "", 0, ErrBadFrame
			}
		}
	}
	//ring:allow string decode allocates its result; segno-form frames carry no strings
	return string(buf), off, nil
}

// putLenWord writes a string-length word (byte count in the low 18
// bits, high bits zero).
//
//ring:hotpath
func putLenWord(b []byte, off, n int) int {
	return putWord(b, off, word.Word(0).Deposit(0, 18, uint64(n)))
}

// getLenWord reads a string-length word, rejecting nonzero high bits
// and lengths beyond max.
//
//ring:hotpath
func getLenWord(b []byte, off, max int) (int, int, error) {
	w, err := getWord(b, off)
	if err != nil {
		return 0, 0, err
	}
	if w.Field(18, 18) != 0 {
		return 0, 0, ErrBadFrame
	}
	n := int(w.Field(0, 18))
	if n > max {
		return 0, 0, ErrBadFrame
	}
	return n, off + wordBytes, nil
}

// ---- Check frames ----

// querySize validates one query's encodability and returns its wire
// size in bytes.
func querySize(q *service.Query) (int, error) {
	switch q.Op {
	case service.OpAccess, service.OpCall, service.OpReturn, service.OpEffRing:
	default:
		return 0, ErrNotEncodable
	}
	if q.Ring > 7 || q.Kind < 0 || q.Kind > 3 {
		return 0, ErrNotEncodable
	}
	if q.EffRing != nil && *q.EffRing > 7 {
		return 0, ErrNotEncodable
	}
	if q.Segno > seg.MaxSegno || q.Wordno >= 1<<seg.WordnoBits {
		return 0, ErrNotEncodable
	}
	if q.Segment != "" {
		if q.Segno != 0 {
			return 0, ErrNotEncodable
		}
		if err := validString(q.Segment, maxQueryName); err != nil {
			return 0, err
		}
	}
	if len(q.Chain) >= 1<<16 {
		return 0, ErrNotEncodable
	}
	for i := range q.Chain {
		st := &q.Chain[i]
		if st.Ring > 7 {
			return 0, ErrNotEncodable
		}
		if st.PR {
			if st.Segno != 0 {
				return 0, ErrNotEncodable
			}
		} else if st.Segno > seg.MaxSegno {
			return 0, ErrNotEncodable
		}
	}
	return 2*wordBytes + stringWords(len(q.Segment))*wordBytes + len(q.Chain)*wordBytes, nil
}

// opCode returns the wire op code for q.Op (validated by querySize).
//
//ring:hotpath
func opCode(op service.Op) uint64 {
	switch op {
	case service.OpAccess:
		return opAccess
	case service.OpCall:
		return opCall
	case service.OpReturn:
		return opReturn
	default:
		return opEffRing
	}
}

// putQuery writes one validated query at off and returns the next
// offset.
//
//ring:hotpath
func putQuery(b []byte, off int, q *service.Query) int {
	cw := word.Word(0).
		Deposit(33, 3, opCode(q.Op)).
		Deposit(30, 3, uint64(q.Ring)).
		Deposit(28, 2, uint64(q.Kind)).
		WithBit(27, q.SameSegment).
		Deposit(16, 7, uint64(len(q.Segment))).
		Deposit(0, 16, uint64(len(q.Chain)))
	if q.EffRing != nil {
		cw = cw.WithBit(26, true).Deposit(23, 3, uint64(*q.EffRing))
	}
	off = putWord(b, off, cw)
	aw := word.Word(0).
		Deposit(18, seg.SegnoBits, uint64(q.Segno)).
		Deposit(0, seg.WordnoBits, uint64(q.Wordno))
	off = putWord(b, off, aw)
	off = putPackedString(b, off, q.Segment)
	for i := range q.Chain {
		st := &q.Chain[i]
		sw := word.Word(0).
			WithBit(35, st.PR).
			Deposit(32, 3, uint64(st.Ring)).
			Deposit(18, seg.SegnoBits, uint64(st.Segno))
		off = putWord(b, off, sw)
	}
	return off
}

// EncodeCheck appends nothing: it fills buf (reusing its storage when
// large enough) with a complete Check frame for the batch and returns
// it. Encoding is rejected with ErrNotEncodable when a query's fields
// exceed the wire widths (invalid rings, out-of-range segment or word
// numbers, oversized names or chains).
//
//ring:hotpath
func EncodeCheck(buf []byte, corr uint64, queries []service.Query) ([]byte, error) {
	size := 8
	for i := range queries {
		n, err := querySize(&queries[i])
		if err != nil {
			return nil, err
		}
		size += n
	}
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: uint32(size), Type: FrameCheck, Corr: corr})
	binary.BigEndian.PutUint32(b[HeaderLen:], uint32(len(queries)))
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	off := HeaderLen + 8
	for i := range queries {
		off = putQuery(b, off, &queries[i])
	}
	return b, nil
}

// Batch is a reusable decode target for Check frames: the queries plus
// the backing slabs their chain slices and effective-ring pointers
// alias, and a decision slice sized to match. Reusing one Batch per
// session keeps the steady-state decode path allocation-free.
type Batch struct {
	Queries []service.Query
	Dst     []service.Decision
	effs    []core.Ring
	chains  []service.ChainStep
}

// DecodeCheckInto decodes a Check payload into b, reusing its slabs.
// The query count is bounded against the payload length before any
// allocation.
//
//ring:hotpath
func DecodeCheckInto(payload []byte, b *Batch) error {
	if len(payload) < 8 {
		return ErrBadFrame
	}
	count := binary.BigEndian.Uint32(payload[0:4])
	if binary.BigEndian.Uint32(payload[4:8]) != 0 {
		return ErrBadFrame
	}
	// Every query occupies at least two words: the count cannot exceed
	// what the payload could possibly hold, so sizing the slabs from it
	// is safe even against a hostile frame.
	if uint64(count)*2*wordBytes > uint64(len(payload)-8) {
		return ErrBadFrame
	}
	n := int(count)
	if cap(b.Queries) < n {
		//ring:allow batch-slab growth is amortized-cold; steady state reuses capacity
		b.Queries = make([]service.Query, n)
		//ring:allow batch-slab growth is amortized-cold; steady state reuses capacity
		b.Dst = make([]service.Decision, n)
		//ring:allow batch-slab growth is amortized-cold; steady state reuses capacity
		b.effs = make([]core.Ring, n)
	}
	b.Queries = b.Queries[:n]
	b.Dst = b.Dst[:n]
	b.effs = b.effs[:n]
	b.chains = b.chains[:0]
	off := 8
	for i := 0; i < n; i++ {
		var err error
		off, err = b.decodeQuery(payload, off, i)
		if err != nil {
			return err
		}
	}
	if off != len(payload) {
		return ErrBadFrame
	}
	return nil
}

// decodeQuery decodes one query at off into b.Queries[i], enforcing
// canonical encoding (zero reserved bits, no effective ring without
// its flag, no name alongside a nonzero segno).
//
//ring:hotpath
func (b *Batch) decodeQuery(p []byte, off, i int) (int, error) {
	q := &b.Queries[i]
	*q = service.Query{}
	if off+2*wordBytes > len(p) {
		return 0, ErrBadFrame
	}
	cw, err := getWord(p, off)
	if err != nil {
		return 0, err
	}
	switch cw.Field(33, 3) {
	case opAccess:
		q.Op = service.OpAccess
	case opCall:
		q.Op = service.OpCall
	case opReturn:
		q.Op = service.OpReturn
	case opEffRing:
		q.Op = service.OpEffRing
	default:
		return 0, ErrBadFrame
	}
	q.Ring = core.Ring(cw.Field(30, 3))
	q.Kind = core.AccessKind(cw.Field(28, 2))
	q.SameSegment = cw.Bit(27)
	if cw.Bit(26) {
		b.effs[i] = core.Ring(cw.Field(23, 3))
		q.EffRing = &b.effs[i]
	} else if cw.Field(23, 3) != 0 {
		return 0, ErrBadFrame
	}
	nameLen := int(cw.Field(16, 7))
	chainLen := int(cw.Field(0, 16))
	aw, err := getWord(p, off+wordBytes)
	if err != nil {
		return 0, err
	}
	if aw.Field(32, 4) != 0 {
		return 0, ErrBadFrame
	}
	q.Segno = uint32(aw.Field(18, seg.SegnoBits))
	q.Wordno = uint32(aw.Field(0, seg.WordnoBits))
	off += 2 * wordBytes
	if nameLen > 0 {
		if q.Segno != 0 {
			return 0, ErrBadFrame
		}
		q.Segment, off, err = getPackedString(p, off, nameLen)
		if err != nil {
			return 0, err
		}
	}
	if chainLen > 0 {
		if off+chainLen*wordBytes > len(p) {
			return 0, ErrBadFrame
		}
		start := len(b.chains)
		if start+chainLen > cap(b.chains) {
			//ring:allow chain-slab growth is amortized-cold; steady state reuses capacity
			grown := make([]service.ChainStep, start+chainLen, 2*(start+chainLen))
			copy(grown, b.chains)
			b.chains = grown
		}
		b.chains = b.chains[:start+chainLen]
		for k := 0; k < chainLen; k++ {
			sw, err := getWord(p, off)
			if err != nil {
				return 0, err
			}
			if sw.Field(0, 18) != 0 {
				return 0, ErrBadFrame
			}
			st := &b.chains[start+k]
			st.PR = sw.Bit(35)
			st.Ring = core.Ring(sw.Field(32, 3))
			st.Segno = uint32(sw.Field(18, seg.SegnoBits))
			if st.PR && st.Segno != 0 {
				return 0, ErrBadFrame
			}
			off += wordBytes
		}
		q.Chain = b.chains[start : start+chainLen : start+chainLen]
	}
	return off, nil
}

// ---- Decisions frames ----

// decisionSize validates one decision's encodability and returns its
// wire size.
func decisionSize(d *service.Decision) (int, error) {
	if d.NewRing > 7 || d.Worker < 0 || d.Worker >= 1<<15 {
		return 0, ErrNotEncodable
	}
	if d.Shard < -1 || d.Shard >= (1<<7)-1 {
		return 0, ErrNotEncodable
	}
	if d.ViolationKind < 0 || int(d.ViolationKind) >= core.ViolationKindCount {
		return 0, ErrNotEncodable
	}
	if d.Outcome != "" {
		if _, ok := outcomeCode[d.Outcome]; !ok {
			return 0, ErrNotEncodable
		}
	}
	size := wordBytes + 16
	if d.Err != "" {
		if err := validString(d.Err, maxString); err != nil {
			return 0, err
		}
		size += wordBytes + stringWords(len(d.Err))*wordBytes
	}
	return size, nil
}

// putDecision writes one validated decision at off. The Violation
// string is not carried: it is derived from ViolationKind on decode
// (the two are interned pairs in internal/core).
//
//ring:hotpath
func putDecision(b []byte, off int, d *service.Decision) int {
	cw := word.Word(0).
		WithBit(35, d.Allowed).
		WithBit(34, d.Trapped).
		WithBit(33, d.Err != "").
		Deposit(29, 3, outcomeCode[d.Outcome]).
		Deposit(25, 4, uint64(d.ViolationKind)).
		Deposit(22, 3, uint64(d.NewRing)).
		Deposit(15, 7, uint64(d.Shard+1)).
		Deposit(0, 15, uint64(d.Worker))
	off = putWord(b, off, cw)
	binary.BigEndian.PutUint64(b[off:], d.VersionLo)
	binary.BigEndian.PutUint64(b[off+8:], d.VersionHi)
	off += 16
	if d.Err != "" {
		off = putLenWord(b, off, len(d.Err))
		off = putPackedString(b, off, d.Err)
	}
	return off
}

// EncodeDecisions fills buf (reusing its storage when large enough)
// with a complete Decisions frame answering correlation ID corr.
//
//ring:hotpath
func EncodeDecisions(buf []byte, corr uint64, ds []service.Decision) ([]byte, error) {
	size := 8
	for i := range ds {
		n, err := decisionSize(&ds[i])
		if err != nil {
			return nil, err
		}
		size += n
	}
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: uint32(size), Type: FrameDecisions, Corr: corr})
	binary.BigEndian.PutUint32(b[HeaderLen:], uint32(len(ds)))
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	off := HeaderLen + 8
	for i := range ds {
		off = putDecision(b, off, &ds[i])
	}
	return b, nil
}

// DecodeDecisionsInto decodes a Decisions payload into dst and returns
// the decision count, which must fit dst.
//
//ring:hotpath
func DecodeDecisionsInto(payload []byte, dst []service.Decision) (int, error) {
	if len(payload) < 8 {
		return 0, ErrBadFrame
	}
	count := binary.BigEndian.Uint32(payload[0:4])
	if binary.BigEndian.Uint32(payload[4:8]) != 0 {
		return 0, ErrBadFrame
	}
	if uint64(count)*(wordBytes+16) > uint64(len(payload)-8) || int(count) > len(dst) {
		return 0, ErrBadFrame
	}
	off := 8
	for i := 0; i < int(count); i++ {
		var err error
		off, err = decodeDecision(payload, off, &dst[i])
		if err != nil {
			return 0, err
		}
	}
	if off != len(payload) {
		return 0, ErrBadFrame
	}
	return int(count), nil
}

// decodeDecision decodes one decision at off into d.
//
//ring:hotpath
func decodeDecision(p []byte, off int, d *service.Decision) (int, error) {
	*d = service.Decision{}
	if off+wordBytes+16 > len(p) {
		return 0, ErrBadFrame
	}
	cw, err := getWord(p, off)
	if err != nil {
		return 0, err
	}
	if cw.Bit(32) {
		return 0, ErrBadFrame
	}
	d.Allowed = cw.Bit(35)
	d.Trapped = cw.Bit(34)
	hasErr := cw.Bit(33)
	oc := cw.Field(29, 3)
	if oc >= uint64(len(outcomeName)) {
		return 0, ErrBadFrame
	}
	d.Outcome = outcomeName[oc]
	vk := cw.Field(25, 4)
	if int(vk) >= core.ViolationKindCount {
		return 0, ErrBadFrame
	}
	if vk != 0 {
		d.ViolationKind = core.ViolationKind(vk)
		d.Violation = d.ViolationKind.String()
	}
	d.NewRing = core.Ring(cw.Field(22, 3))
	d.Shard = int(cw.Field(15, 7)) - 1
	d.Worker = int(cw.Field(0, 15))
	off += wordBytes
	d.VersionLo = binary.BigEndian.Uint64(p[off:])
	d.VersionHi = binary.BigEndian.Uint64(p[off+8:])
	off += 16
	if hasErr {
		var n int
		if off+wordBytes > len(p) {
			return 0, ErrBadFrame
		}
		n, off, err = getLenWord(p, off, maxString)
		if err != nil {
			return 0, err
		}
		if n == 0 {
			return 0, ErrBadFrame
		}
		d.Err, off, err = getPackedString(p, off, n)
		if err != nil {
			return 0, err
		}
	}
	return off, nil
}

// ---- Handshake frames ----

// Hello opens a session: the client's supported version range and the
// tenant the session binds to ("" means the daemon's default tenant).
type Hello struct {
	MinVersion uint16
	MaxVersion uint16
	Tenant     string
}

// EncodeHello fills buf with a complete Hello frame (correlation 0).
func EncodeHello(buf []byte, h Hello) ([]byte, error) {
	if h.MinVersion == 0 || h.MinVersion > h.MaxVersion {
		return nil, ErrNotEncodable
	}
	if err := validString(h.Tenant, maxQueryName); err != nil {
		return nil, err
	}
	size := 8 + wordBytes + stringWords(len(h.Tenant))*wordBytes
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: uint32(size), Type: FrameHello})
	binary.BigEndian.PutUint32(b[HeaderLen:], Magic)
	binary.BigEndian.PutUint16(b[HeaderLen+4:], h.MinVersion)
	binary.BigEndian.PutUint16(b[HeaderLen+6:], h.MaxVersion)
	off := putLenWord(b, HeaderLen+8, len(h.Tenant))
	putPackedString(b, off, h.Tenant)
	return b, nil
}

// decodeHello decodes a Hello payload.
func decodeHello(p []byte) (Hello, error) {
	var h Hello
	if len(p) < 8+wordBytes {
		return h, ErrBadFrame
	}
	if binary.BigEndian.Uint32(p[0:4]) != Magic {
		return h, ErrBadMagic
	}
	h.MinVersion = binary.BigEndian.Uint16(p[4:6])
	h.MaxVersion = binary.BigEndian.Uint16(p[6:8])
	if h.MinVersion == 0 || h.MinVersion > h.MaxVersion {
		return h, ErrBadFrame
	}
	n, off, err := getLenWord(p, 8, maxQueryName)
	if err != nil {
		return h, err
	}
	h.Tenant, off, err = getPackedString(p, off, n)
	if err != nil {
		return h, err
	}
	if off != len(p) {
		return h, ErrBadFrame
	}
	return h, nil
}

// Health is the image shape a Welcome or Pong reports: the bound
// tenant's segment, shard and worker counts plus its descriptor-store
// version.
type Health struct {
	Segments     uint32
	Shards       uint32
	Workers      uint32
	StoreVersion uint64
}

// Welcome accepts a session: the negotiated protocol version and the
// tenant's image shape.
type Welcome struct {
	Version uint16
	Health
}

// EncodeWelcome fills buf with a complete Welcome frame.
func EncodeWelcome(buf []byte, w Welcome) ([]byte, error) {
	if w.Version == 0 {
		return nil, ErrNotEncodable
	}
	const size = 32
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: size, Type: FrameWelcome})
	binary.BigEndian.PutUint32(b[HeaderLen:], Magic)
	binary.BigEndian.PutUint16(b[HeaderLen+4:], w.Version)
	binary.BigEndian.PutUint16(b[HeaderLen+6:], 0)
	binary.BigEndian.PutUint32(b[HeaderLen+8:], w.Segments)
	binary.BigEndian.PutUint32(b[HeaderLen+12:], w.Shards)
	binary.BigEndian.PutUint32(b[HeaderLen+16:], w.Workers)
	binary.BigEndian.PutUint32(b[HeaderLen+20:], 0)
	binary.BigEndian.PutUint64(b[HeaderLen+24:], w.StoreVersion)
	return b, nil
}

// decodeWelcome decodes a Welcome payload.
func decodeWelcome(p []byte) (Welcome, error) {
	var w Welcome
	if len(p) != 32 {
		return w, ErrBadFrame
	}
	if binary.BigEndian.Uint32(p[0:4]) != Magic {
		return w, ErrBadMagic
	}
	w.Version = binary.BigEndian.Uint16(p[4:6])
	if w.Version == 0 || binary.BigEndian.Uint16(p[6:8]) != 0 || binary.BigEndian.Uint32(p[20:24]) != 0 {
		return w, ErrBadFrame
	}
	w.Segments = binary.BigEndian.Uint32(p[8:12])
	w.Shards = binary.BigEndian.Uint32(p[12:16])
	w.Workers = binary.BigEndian.Uint32(p[16:20])
	w.StoreVersion = binary.BigEndian.Uint64(p[24:32])
	return w, nil
}

// ---- Mutation frames ----

// Mutation is a supervisor mutation: the binary form of the JSON
// mutate request. The target segment is named either by Segment or by
// Segno (Segment takes precedence; both set is not encodable).
type Mutation struct {
	Op      MutOp
	Segment string
	Segno   uint32

	// MutSetBrackets payload; must be zero for the other ops.
	Read     bool
	Write    bool
	Execute  bool
	Brackets core.Brackets
	Gates    uint32
}

// EncodeMutate fills buf with a complete Mutate frame. The
// setbrackets payload travels as a genuine SDW even/odd word pair
// (seg.SDW.Encode), so the wire shares the descriptor format with the
// simulated memory; gate counts beyond the SDW gate field's 14 bits
// are not encodable.
func EncodeMutate(buf []byte, corr uint64, m Mutation) ([]byte, error) {
	switch m.Op {
	case MutSetBrackets, MutRevoke, MutRestore:
	default:
		return nil, ErrNotEncodable
	}
	if m.Segment != "" {
		if m.Segno != 0 {
			return nil, ErrNotEncodable
		}
		if err := validString(m.Segment, maxQueryName); err != nil {
			return nil, err
		}
	}
	if m.Segno > seg.MaxSegno {
		return nil, ErrNotEncodable
	}
	size := 8 + 2*wordBytes + stringWords(len(m.Segment))*wordBytes
	if m.Op == MutSetBrackets {
		if m.Brackets.R1 > 7 || m.Brackets.R2 > 7 || m.Brackets.R3 > 7 || m.Gates >= 1<<14 {
			return nil, ErrNotEncodable
		}
		size += 2 * wordBytes
	} else if m.Read || m.Write || m.Execute || m.Brackets != (core.Brackets{}) || m.Gates != 0 {
		return nil, ErrNotEncodable
	}
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: uint32(size), Type: FrameMutate, Corr: corr})
	binary.BigEndian.PutUint32(b[HeaderLen:], uint32(m.Op))
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	off := putLenWord(b, HeaderLen+8, len(m.Segment))
	off = putWord(b, off, word.Word(0).Deposit(18, seg.SegnoBits, uint64(m.Segno)))
	off = putPackedString(b, off, m.Segment)
	if m.Op == MutSetBrackets {
		even, odd := seg.SDW{
			Present: true, Read: m.Read, Write: m.Write, Execute: m.Execute,
			Brackets: m.Brackets, Gate: m.Gates,
		}.Encode()
		off = putWord(b, off, even)
		putWord(b, off, odd)
	}
	return b, nil
}

// decodeMutate decodes a Mutate payload, enforcing a canonical SDW
// pair (present, zero address and bound, fields that re-encode to the
// same words).
func decodeMutate(p []byte) (Mutation, error) {
	var m Mutation
	if len(p) < 8+2*wordBytes {
		return m, ErrBadFrame
	}
	op := binary.BigEndian.Uint32(p[0:4])
	if binary.BigEndian.Uint32(p[4:8]) != 0 {
		return m, ErrBadFrame
	}
	m.Op = MutOp(op)
	switch m.Op {
	case MutSetBrackets, MutRevoke, MutRestore:
	default:
		return m, ErrBadFrame
	}
	n, off, err := getLenWord(p, 8, maxQueryName)
	if err != nil {
		return m, err
	}
	aw, err := getWord(p, off)
	if err != nil {
		return m, err
	}
	if aw.Field(0, 18) != 0 || aw.Field(32, 4) != 0 {
		return m, ErrBadFrame
	}
	m.Segno = uint32(aw.Field(18, seg.SegnoBits))
	off += wordBytes
	m.Segment, off, err = getPackedString(p, off, n)
	if err != nil {
		return m, err
	}
	if m.Segment != "" && m.Segno != 0 {
		return m, ErrBadFrame
	}
	if m.Op == MutSetBrackets {
		if off+2*wordBytes > len(p) {
			return m, ErrBadFrame
		}
		even, err := getWord(p, off)
		if err != nil {
			return m, err
		}
		odd, err := getWord(p, off+wordBytes)
		if err != nil {
			return m, err
		}
		sdw := seg.Decode(even, odd)
		if !sdw.Present || sdw.Addr != 0 || sdw.Bound != 0 {
			return m, ErrBadFrame
		}
		if e2, o2 := sdw.Encode(); e2 != even || o2 != odd {
			return m, ErrBadFrame
		}
		m.Read, m.Write, m.Execute = sdw.Read, sdw.Write, sdw.Execute
		m.Brackets, m.Gates = sdw.Brackets, sdw.Gate
		off += 2 * wordBytes
	}
	if off != len(p) {
		return m, ErrBadFrame
	}
	return m, nil
}

// EncodeMutated fills buf with a Mutated frame reporting the store
// version after the mutation.
func EncodeMutated(buf []byte, corr, version uint64) []byte {
	b := ensure(buf, HeaderLen+8)
	PutHeader(b, Header{Len: 8, Type: FrameMutated, Corr: corr})
	binary.BigEndian.PutUint64(b[HeaderLen:], version)
	return b
}

// ---- Ping / Pong ----

// EncodePing fills buf with a Ping frame.
func EncodePing(buf []byte, corr uint64) []byte {
	b := ensure(buf, HeaderLen)
	PutHeader(b, Header{Type: FramePing, Corr: corr})
	return b
}

// EncodePong fills buf with a Pong frame carrying the image shape.
func EncodePong(buf []byte, corr uint64, h Health) []byte {
	const size = 24
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: size, Type: FramePong, Corr: corr})
	binary.BigEndian.PutUint32(b[HeaderLen:], h.Segments)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], h.Shards)
	binary.BigEndian.PutUint32(b[HeaderLen+8:], h.Workers)
	binary.BigEndian.PutUint32(b[HeaderLen+12:], 0)
	binary.BigEndian.PutUint64(b[HeaderLen+16:], h.StoreVersion)
	return b
}

// decodePong decodes a Pong payload.
func decodePong(p []byte) (Health, error) {
	var h Health
	if len(p) != 24 || binary.BigEndian.Uint32(p[12:16]) != 0 {
		return h, ErrBadFrame
	}
	h.Segments = binary.BigEndian.Uint32(p[0:4])
	h.Shards = binary.BigEndian.Uint32(p[4:8])
	h.Workers = binary.BigEndian.Uint32(p[8:12])
	h.StoreVersion = binary.BigEndian.Uint64(p[16:24])
	return h, nil
}

// ---- Error / GoAway ----

// ErrFrame is the payload of a FrameError: a code mirroring the HTTP
// status mapping plus a message.
type ErrFrame struct {
	Code uint16
	Msg  string
}

// Error implements error, so a client can surface a server rejection
// directly.
func (e *ErrFrame) Error() string {
	return fmt.Sprintf("wire: server error %d: %s", e.Code, e.Msg)
}

// EncodeError fills buf with an Error frame.
func EncodeError(buf []byte, corr uint64, code uint16, msg string) ([]byte, error) {
	if code == 0 {
		return nil, ErrNotEncodable
	}
	if err := validString(msg, maxString); err != nil {
		return nil, err
	}
	size := 8 + wordBytes + stringWords(len(msg))*wordBytes
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: uint32(size), Type: FrameError, Corr: corr})
	binary.BigEndian.PutUint16(b[HeaderLen:], code)
	binary.BigEndian.PutUint16(b[HeaderLen+2:], 0)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	off := putLenWord(b, HeaderLen+8, len(msg))
	putPackedString(b, off, msg)
	return b, nil
}

// decodeError decodes an Error payload.
func decodeError(p []byte) (ErrFrame, error) {
	var e ErrFrame
	if len(p) < 8+wordBytes {
		return e, ErrBadFrame
	}
	e.Code = binary.BigEndian.Uint16(p[0:2])
	if e.Code == 0 || binary.BigEndian.Uint16(p[2:4]) != 0 || binary.BigEndian.Uint32(p[4:8]) != 0 {
		return e, ErrBadFrame
	}
	n, off, err := getLenWord(p, 8, maxString)
	if err != nil {
		return e, err
	}
	e.Msg, off, err = getPackedString(p, off, n)
	if err != nil {
		return e, err
	}
	if off != len(p) {
		return e, ErrBadFrame
	}
	return e, nil
}

// EncodeGoAway fills buf with a GoAway frame.
func EncodeGoAway(buf []byte) []byte {
	b := ensure(buf, HeaderLen)
	PutHeader(b, Header{Type: FrameGoAway})
	return b
}

// ---- Subscribe / Shootdown / LeaseExpire ----
//
// The invalidation stream: a client that caches decisions subscribes
// once, after which every descriptor publication on its tenant fans
// out as a Shootdown push, and the lease itself is revoked with a
// LeaseExpire push when the tenant drains. Pushes carry correlation
// ID 0 — they answer no request.

// Shootdown is the payload of a FrameShootdown push: shard Shard
// published epoch Epoch after a mutation of segment Segno. Epoch is
// the authority — a cached decision for Shard with VersionLo < Epoch
// is stale; Segno is advisory (coalesced pushes report the latest
// edited segment).
type Shootdown struct {
	Shard uint32
	Segno uint32
	Epoch uint64
}

// LeaseExpire is the payload of a FrameLeaseExpire push: the
// subscription is revoked and every cached decision must be dropped.
// Code mirrors the error-code vocabulary (CodeConflict: the tenant is
// draining; CodeUnavailable: the server is shutting the stream down).
type LeaseExpire struct {
	Code uint16
}

// EncodeSubscribe fills buf with a Subscribe frame (empty payload).
func EncodeSubscribe(buf []byte, corr uint64) []byte {
	b := ensure(buf, HeaderLen)
	PutHeader(b, Header{Type: FrameSubscribe, Corr: corr})
	return b
}

// EncodeShootdown fills buf with a Shootdown push frame. The epoch
// must be even: shootdowns are serialized through the shard's epoch
// bump and always name a publication, never an in-flight edit.
//
//ring:hotpath
func EncodeShootdown(buf []byte, sd Shootdown) ([]byte, error) {
	if sd.Epoch&1 != 0 {
		return nil, ErrNotEncodable
	}
	const size = 16
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: size, Type: FrameShootdown})
	binary.BigEndian.PutUint32(b[HeaderLen:], sd.Shard)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], sd.Segno)
	binary.BigEndian.PutUint64(b[HeaderLen+8:], sd.Epoch)
	return b, nil
}

// decodeShootdown decodes a Shootdown payload.
func decodeShootdown(p []byte) (Shootdown, error) {
	var sd Shootdown
	if len(p) != 16 {
		return sd, ErrBadFrame
	}
	sd.Shard = binary.BigEndian.Uint32(p[0:4])
	sd.Segno = binary.BigEndian.Uint32(p[4:8])
	sd.Epoch = binary.BigEndian.Uint64(p[8:16])
	if sd.Epoch&1 != 0 {
		return sd, ErrBadFrame
	}
	return sd, nil
}

// EncodeLeaseExpire fills buf with a LeaseExpire push frame.
func EncodeLeaseExpire(buf []byte, le LeaseExpire) ([]byte, error) {
	if le.Code == 0 {
		return nil, ErrNotEncodable
	}
	const size = 8
	b := ensure(buf, HeaderLen+size)
	PutHeader(b, Header{Len: size, Type: FrameLeaseExpire})
	binary.BigEndian.PutUint16(b[HeaderLen:], le.Code)
	binary.BigEndian.PutUint16(b[HeaderLen+2:], 0)
	binary.BigEndian.PutUint32(b[HeaderLen+4:], 0)
	return b, nil
}

// decodeLeaseExpire decodes a LeaseExpire payload.
func decodeLeaseExpire(p []byte) (LeaseExpire, error) {
	var le LeaseExpire
	if len(p) != 8 || binary.BigEndian.Uint16(p[2:4]) != 0 || binary.BigEndian.Uint32(p[4:8]) != 0 {
		return le, ErrBadFrame
	}
	le.Code = binary.BigEndian.Uint16(p[0:2])
	if le.Code == 0 {
		return le, ErrBadFrame
	}
	return le, nil
}
