package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/seg"
	"repro/internal/service"
)

// roundTrip encodes f, decodes the bytes, re-encodes, and asserts
// byte and struct stability.
func roundTrip(t *testing.T, f Frame) []byte {
	t.Helper()
	b, err := EncodeFrame(nil, f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, n, err := DecodeFrame(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(b) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(b))
	}
	re, err := EncodeFrame(nil, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, b) {
		t.Fatalf("re-encode drifted:\n got %x\nwant %x", re, b)
	}
	return b
}

func TestFrameRoundTrips(t *testing.T) {
	frames := map[string]Frame{
		"hello":         {Type: FrameHello, Hello: Hello{MinVersion: 1, MaxVersion: 3, Tenant: "acme"}},
		"hello_default": {Type: FrameHello, Hello: Hello{MinVersion: Version, MaxVersion: Version}},
		"welcome": {Type: FrameWelcome, Welcome: Welcome{Version: 1,
			Health: Health{Segments: 6, Shards: 8, Workers: 2, StoreVersion: 42}}},
		"check": {Type: FrameCheck, Corr: 7, Queries: goldenQueries()},
		"check_limits": {Type: FrameCheck, Corr: 1 << 63, Queries: []service.Query{
			{Op: service.OpAccess, Ring: 7, Segno: seg.MaxSegno, Wordno: 1<<seg.WordnoBits - 1,
				Kind: core.AccessExecute, SameSegment: true},
			{Op: service.OpEffRing, Ring: 0, Chain: []service.ChainStep{
				{PR: true, Ring: 7}, {Segno: seg.MaxSegno, Ring: 1}, {PR: true}}},
		}},
		"decisions": {Type: FrameDecisions, Corr: 7, Decisions: []service.Decision{
			{Allowed: true, Outcome: core.CallDownward.String(), NewRing: 3, Shard: 1},
			{Violation: core.ViolationKind(4).String(), ViolationKind: 4,
				VersionLo: 2, VersionHi: 2, Shard: 0, Worker: 3},
			{Trapped: true, Allowed: true, Outcome: core.ReturnDownwardTrap.String(),
				Shard: -1, Worker: 1<<15 - 1, VersionLo: 1 << 60, VersionHi: 1 << 60},
			{Err: "invalid access kind 3", Shard: -1},
		}},
		"mutate_setbrackets": {Type: FrameMutate, Corr: 9, Mutation: Mutation{
			Op: MutSetBrackets, Segment: "data", Read: true, Write: true,
			Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}}},
		"mutate_revoke":  {Type: FrameMutate, Corr: 10, Mutation: Mutation{Op: MutRevoke, Segno: 5}},
		"mutate_restore": {Type: FrameMutate, Corr: 11, Mutation: Mutation{Op: MutRestore, Segment: "secret"}},
		"mutated":        {Type: FrameMutated, Corr: 9, StoreVersion: 2},
		"ping":           {Type: FramePing, Corr: 12},
		"pong": {Type: FramePong, Corr: 12,
			Health: Health{Segments: 3, Shards: 8, Workers: 1, StoreVersion: 4}},
		"error":  {Type: FrameError, Corr: 13, Err: ErrFrame{Code: CodeShed, Msg: "service: decision queue full"}},
		"goaway": {Type: FrameGoAway},
	}
	for name, f := range frames {
		t.Run(name, func(t *testing.T) {
			b := roundTrip(t, f)
			got, _, _ := DecodeFrame(b)
			// Structural equality, not just byte stability. The check
			// frame's chain/effring storage differs (slab-backed), so
			// compare through reflect.DeepEqual which follows pointers.
			if !reflect.DeepEqual(got, f) {
				t.Errorf("decode drifted:\n got %+v\nwant %+v", got, f)
			}
		})
	}
}

func TestDecisionViolationDerivedFromKind(t *testing.T) {
	// The violation string is not carried on the wire: decode rebuilds
	// it from the interned kind names.
	for k := 1; k < core.ViolationKindCount; k++ {
		d := service.Decision{ViolationKind: core.ViolationKind(k),
			Violation: core.ViolationKind(k).String(), Shard: -1}
		b, err := EncodeDecisions(nil, 1, []service.Decision{d})
		if err != nil {
			t.Fatalf("kind %d: %v", k, err)
		}
		var dst [1]service.Decision
		if _, err := DecodeDecisionsInto(b[HeaderLen:], dst[:]); err != nil {
			t.Fatalf("kind %d: decode: %v", k, err)
		}
		if dst[0].Violation != core.ViolationKind(k).String() {
			t.Errorf("kind %d: violation %q, want %q", k, dst[0].Violation, core.ViolationKind(k).String())
		}
	}
}

func TestEncodeRejectsUnencodable(t *testing.T) {
	cases := map[string]Frame{
		"ring too wide": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Ring: 8, Segment: "data"}}},
		"effring too wide": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Ring: 1, EffRing: ringp(9)}}},
		"segno too wide": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Segno: seg.MaxSegno + 1}}},
		"wordno too wide": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Wordno: 1 << seg.WordnoBits}}},
		"bad op": {Type: FrameCheck, Queries: []service.Query{{Op: "sniff"}}},
		"bad kind": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Kind: 4}}},
		"name and segno": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Segment: "data", Segno: 3}}},
		"name too long": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Segment: strings.Repeat("x", maxQueryName+1)}}},
		"nul in name": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpAccess, Segment: "da\x00ta"}}},
		"chain ring too wide": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpEffRing, Chain: []service.ChainStep{{Ring: 8}}}}},
		"pr step with segno": {Type: FrameCheck, Queries: []service.Query{
			{Op: service.OpEffRing, Chain: []service.ChainStep{{PR: true, Segno: 1}}}}},
		"decision bad outcome": {Type: FrameDecisions, Decisions: []service.Decision{
			{Outcome: "sideways call"}}},
		"decision worker too wide": {Type: FrameDecisions, Decisions: []service.Decision{
			{Worker: 1 << 15}}},
		"decision shard too wide": {Type: FrameDecisions, Decisions: []service.Decision{
			{Shard: 127}}},
		"mutation bad op": {Type: FrameMutate, Mutation: Mutation{Op: 9}},
		"mutation gates too wide": {Type: FrameMutate, Mutation: Mutation{
			Op: MutSetBrackets, Segment: "code", Gates: 1 << 14}},
		"mutation brackets on revoke": {Type: FrameMutate, Mutation: Mutation{
			Op: MutRevoke, Segment: "data", Read: true}},
		"hello zero min":       {Type: FrameHello, Hello: Hello{MaxVersion: 1}},
		"hello inverted range": {Type: FrameHello, Hello: Hello{MinVersion: 2, MaxVersion: 1}},
		"error zero code":      {Type: FrameError, Err: ErrFrame{Msg: "x"}},
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := EncodeFrame(nil, f); err == nil {
				t.Errorf("encode accepted %+v", f)
			}
		})
	}
}

// TestDecodeRejectsTruncation decodes every proper prefix of valid
// frames: none may succeed or panic.
func TestDecodeRejectsTruncation(t *testing.T) {
	for _, f := range []Frame{
		{Type: FrameCheck, Corr: 7, Queries: goldenQueries()},
		{Type: FrameHello, Hello: Hello{MinVersion: 1, MaxVersion: 1, Tenant: "acme"}},
		{Type: FrameError, Corr: 3, Err: ErrFrame{Code: 400, Msg: "nope"}},
	} {
		b, err := EncodeFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(b); n++ {
			if _, _, err := DecodeFrame(b[:n]); err == nil {
				t.Fatalf("%v: decode of %d/%d byte prefix succeeded", f.Type, n, len(b))
			}
		}
	}
}

// TestDecodeRejectsCorruption flips each byte of a valid check frame
// (and of a decisions frame) one at a time: decoding must either fail
// or stay canonical (re-encode to exactly the mutated bytes).
func TestDecodeRejectsCorruption(t *testing.T) {
	for _, f := range []Frame{
		{Type: FrameCheck, Corr: 7, Queries: goldenQueries()},
		{Type: FrameDecisions, Corr: 7, Decisions: []service.Decision{
			{Allowed: true, Outcome: core.CallDownward.String(), NewRing: 3, Shard: 1}}},
		{Type: FrameMutate, Corr: 9, Mutation: Mutation{
			Op: MutSetBrackets, Segment: "data", Read: true,
			Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}}},
	} {
		orig, err := EncodeFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range orig {
			for _, flip := range []byte{0x01, 0x80} {
				mut := bytes.Clone(orig)
				mut[i] ^= flip
				got, n, err := DecodeFrame(mut)
				if err != nil {
					continue
				}
				re, err := EncodeFrame(nil, got)
				if err != nil {
					t.Fatalf("%v byte %d ^%02x: decoded but re-encode failed: %v", f.Type, i, flip, err)
				}
				if !bytes.Equal(re, mut[:n]) {
					t.Fatalf("%v byte %d ^%02x: non-canonical decode survived:\n got %x\nwant %x",
						f.Type, i, flip, re, mut[:n])
				}
			}
		}
	}
}

func TestHeaderRejectsReservedBits(t *testing.T) {
	b := EncodePing(nil, 3)
	for _, i := range []int{5, 6, 7} {
		mut := bytes.Clone(b)
		mut[i] = 1
		if _, err := ParseHeader(mut); err == nil {
			t.Errorf("nonzero header byte %d accepted", i)
		}
	}
	mut := bytes.Clone(b)
	mut[4] = byte(FrameLeaseExpire) + 1
	if _, err := ParseHeader(mut); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 4096)
	b, err := EncodeCheck(buf, 1, goldenQueries())
	if err != nil {
		t.Fatal(err)
	}
	if &b[0] != &buf[:1][0] {
		t.Error("EncodeCheck did not reuse the provided buffer")
	}
}
