package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/tenant"
)

// readGolden loads a recorded HTTP fixture from the service package's
// golden set and unmarshals it into v.
func readGolden(t *testing.T, name string, v interface{}) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "service", "testdata", "golden", name))
	if err != nil {
		t.Fatalf("read golden fixture: %v", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
}

// stripWorker zeroes the worker attribution, the one decision field
// that legitimately differs between transports (it names whichever
// pool worker drained the batch).
func stripWorker(ds []service.Decision) []service.Decision {
	out := make([]service.Decision, len(ds))
	copy(out, ds)
	for i := range out {
		out[i].Worker = 0
	}
	return out
}

// TestDifferentialGoldenReplay replays the recorded HTTP golden
// session — the byte-for-byte fixtures the JSON API is pinned to —
// through the binary protocol, asserting decision-for-decision
// identical results. The JSON fixtures are the oracle: if this test
// passes, a wire client and an HTTP client querying the same image
// cannot disagree.
func TestDifferentialGoldenReplay(t *testing.T) {
	// Workers: 1 matches the server the fixtures were recorded
	// against, so even the worker attribution lines up.
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// healthz.json <-> ping frame.
	var health struct {
		OK       bool   `json:"ok"`
		Workers  uint32 `json:"workers"`
		Segments uint32 `json:"segments"`
		Shards   uint32 `json:"shards"`
		Version  uint64 `json:"version"`
	}
	readGolden(t, "healthz.json", &health)
	h, err := c.Ping()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if !health.OK || h.Workers != health.Workers || h.Segments != health.Segments ||
		h.Shards != health.Shards || h.StoreVersion != health.Version {
		t.Errorf("ping = %+v, healthz fixture = %+v", h, health)
	}

	// check_ok.json <-> the six-query batch.
	var checkOK struct {
		Decisions []service.Decision `json:"decisions"`
	}
	readGolden(t, "check_ok.json", &checkOK)
	got, err := c.Check(goldenQueries()...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !reflect.DeepEqual(got, checkOK.Decisions) {
		t.Errorf("wire decisions diverge from check_ok.json:\n got %+v\nwant %+v", got, checkOK.Decisions)
	}

	// check_empty.json <-> error frame with the same message, same
	// 400 code the HTTP route answers.
	var fixtureErr struct {
		Error string `json:"error"`
	}
	readGolden(t, "check_empty.json", &fixtureErr)
	err = c.CheckInto(nil, nil)
	var ef *ErrFrame
	if !errors.As(err, &ef) || ef.Code != CodeBadRequest || ef.Msg != fixtureErr.Error {
		t.Errorf("empty batch on wire = %v, HTTP fixture says 400 %q", err, fixtureErr.Error)
	}

	// check_bad_kind.json has no wire equivalent by construction: the
	// frame's 2-bit kind field cannot carry HTTP's arbitrary kind
	// strings, so an unknown kind fails at the client encoder and
	// never crosses the wire. The nearest expressible probe — the one
	// unused 2-bit pattern — travels and is rejected per-decision by
	// the same evaluator path.
	if _, err := EncodeCheck(nil, 1, []service.Query{
		{Op: service.OpAccess, Ring: 4, Segment: "data", Kind: 4}}); err == nil {
		t.Error("unknown access kind was encodable")
	}
	badKind, err := c.Check(service.Query{Op: service.OpAccess, Ring: 4, Segment: "data", Kind: 3})
	if err != nil {
		t.Fatalf("kind-3 probe: %v", err)
	}
	if badKind[0].Err != "invalid access kind 3" || badKind[0].Shard != -1 {
		t.Errorf("kind-3 probe decision = %+v", badKind[0])
	}

	// check_queue_full.json <-> the shed error frame's message
	// (TestSessionBackpressureShed drives a live shed and asserts
	// code 429 with exactly this string).
	readGolden(t, "check_queue_full.json", &fixtureErr)
	if service.ErrQueueFull.Error() != fixtureErr.Error {
		t.Errorf("shed message %q, fixture %q", service.ErrQueueFull.Error(), fixtureErr.Error)
	}

	// mutate_ok.json <-> the same setbrackets mutation on the wire.
	var mutOK struct {
		OK      bool   `json:"ok"`
		Version uint64 `json:"version"`
	}
	readGolden(t, "mutate_ok.json", &mutOK)
	ver, err := c.Mutate(Mutation{Op: MutSetBrackets, Segment: "data", Read: true, Write: true,
		Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if !mutOK.OK || ver != mutOK.Version {
		t.Errorf("wire mutate version %d, mutate_ok.json says %d", ver, mutOK.Version)
	}

	// check_after_mutate.json <-> the post-mutation decision,
	// including the advanced version interval.
	var afterMut struct {
		Decisions []service.Decision `json:"decisions"`
	}
	readGolden(t, "check_after_mutate.json", &afterMut)
	after, err := c.Check(service.Query{Op: service.OpAccess, Ring: 4, Segment: "data", Wordno: 3})
	if err != nil {
		t.Fatalf("check after mutate: %v", err)
	}
	if !reflect.DeepEqual(after, afterMut.Decisions) {
		t.Errorf("post-mutation wire decision diverges:\n got %+v\nwant %+v", after, afterMut.Decisions)
	}

	// mutate_unknown_segment.json <-> 404-coded error frame with the
	// identical message.
	readGolden(t, "mutate_unknown_segment.json", &fixtureErr)
	_, err = c.Mutate(Mutation{Op: MutRevoke, Segment: "nonesuch"})
	if !errors.As(err, &ef) || ef.Code != CodeNotFound || ef.Msg != fixtureErr.Error {
		t.Errorf("unknown segment on wire = %v, HTTP fixture says 404 %q", err, fixtureErr.Error)
	}
}

// httpCheck submits queries through the multi-tenant HTTP handler and
// returns the decisions.
func httpCheck(t *testing.T, url string, queries []service.Query) []service.Decision {
	t.Helper()
	type wq struct {
		Op          string              `json:"op"`
		Ring        uint8               `json:"ring"`
		Segment     string              `json:"segment,omitempty"`
		Segno       uint32              `json:"segno,omitempty"`
		Wordno      uint32              `json:"wordno,omitempty"`
		Kind        string              `json:"kind,omitempty"`
		EffRing     *uint8              `json:"eff_ring,omitempty"`
		SameSegment bool                `json:"same_segment,omitempty"`
		Chain       []service.ChainStep `json:"chain,omitempty"`
	}
	kinds := [3]string{"read", "write", "execute"}
	req := struct {
		Queries []wq `json:"queries"`
	}{Queries: make([]wq, len(queries))}
	for i, q := range queries {
		req.Queries[i] = wq{Op: string(q.Op), Ring: uint8(q.Ring), Segment: q.Segment,
			Segno: q.Segno, Wordno: q.Wordno, Kind: kinds[q.Kind],
			SameSegment: q.SameSegment, Chain: q.Chain}
		if q.EffRing != nil {
			r := uint8(*q.EffRing)
			req.Queries[i].EffRing = &r
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal check request: %v", err)
	}
	resp, err := http.Post(url+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("http check: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("http check status %d", resp.StatusCode)
	}
	var out struct {
		Decisions []service.Decision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode check response: %v", err)
	}
	return out.Decisions
}

// scriptMutation is one step of the deterministic mutation script the
// randomized differential applies to the "data" segment.
type scriptMutation struct {
	read, write, execute bool
	brackets             core.Brackets
	gates                uint32
}

func makeScript(n int, rng *rand.Rand) []scriptMutation {
	script := make([]scriptMutation, n)
	for i := range script {
		rs := []core.Ring{core.Ring(rng.Intn(8)), core.Ring(rng.Intn(8)), core.Ring(rng.Intn(8))}
		sort.Slice(rs, func(a, b int) bool { return rs[a] < rs[b] })
		script[i] = scriptMutation{
			read:     rng.Intn(4) != 0,
			write:    rng.Intn(2) == 0,
			execute:  rng.Intn(4) == 0,
			brackets: core.Brackets{R1: rs[0], R2: rs[1], R3: rs[2]},
			gates:    uint32(rng.Intn(4)),
		}
	}
	return script
}

func (m scriptMutation) wire() Mutation {
	return Mutation{Op: MutSetBrackets, Segment: "data", Read: m.read, Write: m.write,
		Execute: m.execute, Brackets: m.brackets, Gates: m.gates}
}

// TestDifferentialRandomizedTrace is the live half of the transport
// oracle argument (the T12 replay argument, lifted onto the wire):
// concurrent wire checkers race a mutator that alternates transports
// per step; every recorded decision must replay identically against a
// single-worker oracle advanced to the store version the decision
// reported. Run under -race in CI.
func TestDifferentialRandomizedTrace(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 4})
	_, addr := startWireServer(t, reg, Config{})
	hts := httptest.NewServer(tenant.NewHandler(reg, tenant.HandlerOptions{}))
	defer hts.Close()
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	script := makeScript(64, rand.New(rand.NewSource(17)))

	type record struct {
		q service.Query
		d service.Decision
	}
	const checkers = 4
	var (
		recmu   sync.Mutex
		records []record
		done    = make(chan struct{})
		wg      sync.WaitGroup
	)
	for g := 0; g < checkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			dst := make([]service.Decision, 4)
			for {
				select {
				case <-done:
					return
				default:
				}
				queries := make([]service.Query, 1+rng.Intn(4))
				for i := range queries {
					q := service.Query{
						Op:     service.OpAccess,
						Ring:   core.Ring(rng.Intn(8)),
						Wordno: uint32(rng.Intn(16)),
						Kind:   core.AccessKind(rng.Intn(3)),
					}
					// Mutations target only "data" (segno 0); name-form
					// and segno-form must behave identically.
					if rng.Intn(2) == 0 {
						q.Segment = "data"
					}
					queries[i] = q
				}
				if err := c.CheckInto(queries, dst); err != nil {
					select {
					case <-done:
						return
					default:
						t.Errorf("checker %d: %v", g, err)
						return
					}
				}
				recmu.Lock()
				for i := range queries {
					d := dst[i]
					if d.VersionLo != d.VersionHi || d.VersionLo%2 != 0 {
						t.Errorf("torn snapshot interval [%d,%d] for %+v", d.VersionLo, d.VersionHi, queries[i])
					}
					records = append(records, record{queries[i], d})
				}
				recmu.Unlock()
			}
		}(g)
	}

	// The mutator: each script step travels over a different transport
	// than the one before it — the point being that transport choice
	// must not be observable in any decision.
	for k, m := range script {
		if k%2 == 0 {
			if _, err := c.Mutate(m.wire()); err != nil {
				t.Fatalf("wire mutation %d: %v", k, err)
			}
		} else {
			body, _ := json.Marshal(map[string]interface{}{
				"op": "setbrackets", "segment": "data",
				"read": m.read, "write": m.write, "execute": m.execute,
				"r1": m.brackets.R1, "r2": m.brackets.R2, "r3": m.brackets.R3,
				"gates": m.gates,
			})
			resp, err := http.Post(hts.URL+"/v1/mutate", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("http mutation %d: %v", k, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("http mutation %d: status %d", k, resp.StatusCode)
			}
		}
		time.Sleep(500 * time.Microsecond)
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Replay every recorded decision against a fresh single-worker
	// oracle advanced through the same script prefix the decision's
	// version interval certifies.
	oreg := tenant.NewRegistry(tenant.Config{})
	otn, err := oreg.Load("oracle", testSegments(), tenant.TenantConfig{Workers: 1})
	if err != nil {
		t.Fatalf("load oracle: %v", err)
	}
	defer oreg.Close()
	ost := otn.Store()

	sort.SliceStable(records, func(i, j int) bool { return records[i].d.VersionLo < records[j].d.VersionLo })
	applied := 0
	var dataRecords int
	for _, rec := range records {
		k := int(rec.d.VersionLo / 2)
		if k > len(script) {
			t.Fatalf("decision reports version %d beyond the %d-step script", rec.d.VersionLo, len(script))
		}
		for applied < k {
			m := script[applied]
			if err := ost.SetBrackets(0, m.read, m.write, m.execute, m.brackets, m.gates); err != nil {
				t.Fatalf("oracle mutation %d: %v", applied, err)
			}
			applied++
		}
		want, err := otn.Submit(context.Background(), []service.Query{rec.q})
		if err != nil {
			t.Fatalf("oracle submit: %v", err)
		}
		g, w := rec.d, want[0]
		g.Worker, w.Worker = 0, 0
		if g != w {
			t.Fatalf("decision diverges from oracle at version %d:\nquery %+v\n live %+v\nwant %+v",
				rec.d.VersionLo, rec.q, g, w)
		}
		dataRecords++
	}
	if dataRecords < 100 {
		t.Errorf("only %d decisions recorded; the race window never opened", dataRecords)
	}
	t.Logf("replayed %d decisions across %d mutations", dataRecords, len(script))

	// Quiesced cross-transport battery: the final store must answer a
	// fixed query set identically over HTTP and over the wire.
	battery := goldenQueries()
	for ring := 0; ring < 8; ring++ {
		for segno := uint32(0); segno < 3; segno++ {
			for kind := 0; kind < 3; kind++ {
				battery = append(battery, service.Query{Op: service.OpAccess,
					Ring: core.Ring(ring), Segno: segno, Wordno: 1, Kind: core.AccessKind(kind)})
			}
		}
		battery = append(battery,
			service.Query{Op: service.OpCall, Ring: core.Ring(ring), Segment: "code", Wordno: 1},
			service.Query{Op: service.OpReturn, Ring: core.Ring(ring), Segment: "data", EffRing: ringp(core.Ring(ring))},
		)
	}
	wireDs, err := c.Check(battery...)
	if err != nil {
		t.Fatalf("wire battery: %v", err)
	}
	httpDs := httpCheck(t, hts.URL, battery)
	if len(httpDs) != len(battery) {
		t.Fatalf("http battery answered %d of %d", len(httpDs), len(battery))
	}
	gotW, gotH := stripWorker(wireDs), stripWorker(httpDs)
	for i := range battery {
		if gotW[i] != gotH[i] {
			t.Errorf("battery %d (%+v):\n wire %+v\n http %+v", i, battery[i], gotW[i], gotH[i])
		}
	}
}
