package wire

import (
	"encoding/binary"

	"repro/internal/service"
)

// Frame is the decoded form of any frame — the union the golden and
// fuzz tests round-trip through. Only the field selected by Type is
// meaningful.
type Frame struct {
	Type FrameType
	Corr uint64

	Hello        Hello              // FrameHello
	Welcome      Welcome            // FrameWelcome
	Queries      []service.Query    // FrameCheck
	Decisions    []service.Decision // FrameDecisions
	Mutation     Mutation           // FrameMutate
	StoreVersion uint64             // FrameMutated
	Health       Health             // FramePong
	Err          ErrFrame           // FrameError
	Shootdown    Shootdown          // FrameShootdown
	Expire       LeaseExpire        // FrameLeaseExpire
}

// DecodeFrame decodes one complete frame from the front of b,
// returning the frame and the number of bytes consumed. Decoding is
// strict: every reserved bit zero, every field canonical, the payload
// consumed exactly — so EncodeFrame(DecodeFrame(b)) reproduces b byte
// for byte (the FuzzDecodeFrame property).
func DecodeFrame(b []byte) (Frame, int, error) {
	var f Frame
	if len(b) < HeaderLen {
		return f, 0, ErrBadFrame
	}
	h, err := ParseHeader(b)
	if err != nil {
		return f, 0, err
	}
	if h.Len > DefaultMaxFrame {
		return f, 0, ErrFrameTooLarge
	}
	total := HeaderLen + int(h.Len)
	if len(b) < total {
		return f, 0, ErrBadFrame
	}
	p := b[HeaderLen:total]
	f.Type, f.Corr = h.Type, h.Corr
	switch h.Type {
	case FrameHello:
		if h.Corr != 0 {
			return f, 0, ErrBadFrame
		}
		f.Hello, err = decodeHello(p)
	case FrameWelcome:
		if h.Corr != 0 {
			return f, 0, ErrBadFrame
		}
		f.Welcome, err = decodeWelcome(p)
	case FrameCheck:
		var batch Batch
		if err = DecodeCheckInto(p, &batch); err == nil {
			f.Queries = batch.Queries
		}
	case FrameDecisions:
		if len(p) < 8 {
			return f, 0, ErrBadFrame
		}
		count := binary.BigEndian.Uint32(p[0:4])
		if uint64(count)*(wordBytes+16) > uint64(len(p)-8) {
			return f, 0, ErrBadFrame
		}
		dst := make([]service.Decision, count)
		var n int
		if n, err = DecodeDecisionsInto(p, dst); err == nil {
			f.Decisions = dst[:n]
		}
	case FrameMutate:
		f.Mutation, err = decodeMutate(p)
	case FrameMutated:
		if len(p) != 8 {
			return f, 0, ErrBadFrame
		}
		f.StoreVersion = binary.BigEndian.Uint64(p)
	case FramePing:
		if len(p) != 0 {
			return f, 0, ErrBadFrame
		}
	case FramePong:
		f.Health, err = decodePong(p)
	case FrameError:
		f.Err, err = decodeError(p)
	case FrameGoAway:
		if h.Corr != 0 || len(p) != 0 {
			return f, 0, ErrBadFrame
		}
	case FrameSubscribe:
		if len(p) != 0 {
			return f, 0, ErrBadFrame
		}
	case FrameShootdown:
		if h.Corr != 0 {
			return f, 0, ErrBadFrame
		}
		f.Shootdown, err = decodeShootdown(p)
	case FrameLeaseExpire:
		if h.Corr != 0 {
			return f, 0, ErrBadFrame
		}
		f.Expire, err = decodeLeaseExpire(p)
	}
	if err != nil {
		return Frame{}, 0, err
	}
	return f, total, nil
}

// EncodeFrame encodes f into buf (reusing its storage when large
// enough) and returns the complete frame.
func EncodeFrame(buf []byte, f Frame) ([]byte, error) {
	switch f.Type {
	case FrameHello:
		if f.Corr != 0 {
			return nil, ErrNotEncodable
		}
		return EncodeHello(buf, f.Hello)
	case FrameWelcome:
		if f.Corr != 0 {
			return nil, ErrNotEncodable
		}
		return EncodeWelcome(buf, f.Welcome)
	case FrameCheck:
		return EncodeCheck(buf, f.Corr, f.Queries)
	case FrameDecisions:
		return EncodeDecisions(buf, f.Corr, f.Decisions)
	case FrameMutate:
		return EncodeMutate(buf, f.Corr, f.Mutation)
	case FrameMutated:
		return EncodeMutated(buf, f.Corr, f.StoreVersion), nil
	case FramePing:
		return EncodePing(buf, f.Corr), nil
	case FramePong:
		return EncodePong(buf, f.Corr, f.Health), nil
	case FrameError:
		return EncodeError(buf, f.Corr, f.Err.Code, f.Err.Msg)
	case FrameGoAway:
		if f.Corr != 0 {
			return nil, ErrNotEncodable
		}
		return EncodeGoAway(buf), nil
	case FrameSubscribe:
		return EncodeSubscribe(buf, f.Corr), nil
	case FrameShootdown:
		if f.Corr != 0 {
			return nil, ErrNotEncodable
		}
		return EncodeShootdown(buf, f.Shootdown)
	case FrameLeaseExpire:
		if f.Corr != 0 {
			return nil, ErrNotEncodable
		}
		return EncodeLeaseExpire(buf, f.Expire)
	default:
		return nil, ErrNotEncodable
	}
}
