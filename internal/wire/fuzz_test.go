package wire

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tenant"
)

// FuzzDecodeFrame fuzzes the strict-decode property: any byte string
// that decodes must re-encode to exactly the bytes consumed (every
// reserved bit zero, every packed field canonical), and decoding must
// never panic or over-read.
func FuzzDecodeFrame(f *testing.F) {
	for _, g := range goldenFrames() {
		b, err := EncodeFrame(nil, g.Frame)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	// A torn header and a hostile length prefix.
	f.Add([]byte{0, 0, 0, 9, byte(FrameCheck)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(FramePing), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < HeaderLen || n > len(data) {
			t.Fatalf("decode consumed %d bytes of %d", n, len(data))
		}
		re, err := EncodeFrame(nil, frame)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v\nframe: %+v", err, frame)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("round trip drifted:\n got %x\nwant %x", re, data[:n])
		}
	})
}

// fuzzServer lazily starts one shared wire server for FuzzSessionBytes
// (fuzz workers run many executions per process; one registry and
// listener serve them all).
var (
	fuzzOnce sync.Once
	fuzzAddr string
)

func fuzzServerAddr(f *testing.F) string {
	fuzzOnce.Do(func() {
		reg := tenant.NewRegistry(tenant.Config{})
		if _, err := reg.Load(tenant.DefaultTenant, testSegments(), tenant.TenantConfig{Workers: 1}); err != nil {
			f.Fatalf("load tenant: %v", err)
		}
		srv := NewServer(reg, Config{
			MaxFrame:         1 << 16,
			HandshakeTimeout: 200 * time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)
		fuzzAddr = ln.Addr().String()
	})
	return fuzzAddr
}

// FuzzSessionBytes feeds arbitrary bytes to a live session: the
// server must answer with well-formed frames or close the connection
// cleanly — never panic (a panic kills the fuzz process) and never
// hang past the handshake timeout.
func FuzzSessionBytes(f *testing.F) {
	addr := fuzzServerAddr(f)

	hello, err := EncodeHello(nil, Hello{MinVersion: 1, MaxVersion: 1})
	if err != nil {
		f.Fatal(err)
	}
	check, err := EncodeCheck(nil, 1, goldenQueries())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{}, hello...), check...))
	f.Add(append(append([]byte{}, hello...), EncodePing(nil, 2)...))
	f.Add(append(append([]byte{}, hello...), EncodeSubscribe(nil, 3)...))
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(append(append([]byte{}, hello...), 0xFF, 0xFF, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Skipf("dial: %v", err)
		}
		defer conn.Close()
		_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
		_, _ = conn.Write(data)
		// Half-close so a prefix of a valid frame surfaces EOF to the
		// session instead of a read that only the timeout ends.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		// Drain whatever the server answers: every frame must parse.
		var buf []byte
		for {
			h, payload, err := readFrame(conn, &buf, DefaultMaxFrame)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Fatalf("session hung instead of closing")
				}
				return
			}
			if !h.Type.valid() || int(h.Len) != len(payload) {
				t.Fatalf("malformed response frame: %+v", h)
			}
		}
	})
}
