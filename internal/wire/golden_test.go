package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
)

// Golden binary fixtures pin the frame layout byte for byte: header
// packing, word order, field widths, string padding. A codec change
// that drifts the wire format fails here before any peer does.
// Regenerate deliberately with:
//
//	go test ./internal/wire -run TestWireGolden -update
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// goldenFrames enumerates one representative frame per type, in a
// fixed order so the fixture set is stable.
func goldenFrames() []struct {
	Name  string
	Frame Frame
} {
	return []struct {
		Name  string
		Frame Frame
	}{
		{"hello", Frame{Type: FrameHello,
			Hello: Hello{MinVersion: 1, MaxVersion: 1, Tenant: "acme"}}},
		{"welcome", Frame{Type: FrameWelcome, Welcome: Welcome{Version: 1,
			Health: Health{Segments: 3, Shards: 8, Workers: 1, StoreVersion: 0}}}},
		{"check", Frame{Type: FrameCheck, Corr: 7, Queries: goldenQueries()}},
		{"decisions", Frame{Type: FrameDecisions, Corr: 7, Decisions: []service.Decision{
			{Allowed: true, Shard: 0},
			{Violation: core.ViolationKind(4).String(), ViolationKind: 4, Shard: 0},
			{Allowed: true, Outcome: core.CallDownward.String(), NewRing: 3, Shard: 1},
			{Allowed: true, Outcome: core.ReturnUpward.String(), NewRing: 3, Shard: 1},
			{Allowed: true, NewRing: 3, Shard: -1},
			{Err: "invalid access kind 3", Shard: -1},
		}}},
		{"mutate_setbrackets", Frame{Type: FrameMutate, Corr: 9, Mutation: Mutation{
			Op: MutSetBrackets, Segment: "data", Read: true, Write: true,
			Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}}}},
		{"mutate_revoke", Frame{Type: FrameMutate, Corr: 10,
			Mutation: Mutation{Op: MutRevoke, Segment: "nonesuch"}}},
		{"mutated", Frame{Type: FrameMutated, Corr: 9, StoreVersion: 2}},
		{"ping", Frame{Type: FramePing, Corr: 11}},
		{"pong", Frame{Type: FramePong, Corr: 11,
			Health: Health{Segments: 3, Shards: 8, Workers: 1, StoreVersion: 2}}},
		{"error", Frame{Type: FrameError, Corr: 12,
			Err: ErrFrame{Code: CodeShed, Msg: "service: decision queue full"}}},
		{"goaway", Frame{Type: FrameGoAway}},
		{"subscribe", Frame{Type: FrameSubscribe, Corr: 13}},
		{"shootdown", Frame{Type: FrameShootdown,
			Shootdown: Shootdown{Shard: 2, Segno: 10, Epoch: 4}}},
		{"lease_expire", Frame{Type: FrameLeaseExpire,
			Expire: LeaseExpire{Code: CodeConflict}}},
	}
}

// TestWireGolden pins each frame encoding against its .bin fixture
// and asserts the fixture decodes back to the source frame.
func TestWireGolden(t *testing.T) {
	for _, g := range goldenFrames() {
		t.Run(g.Name, func(t *testing.T) {
			got, err := EncodeFrame(nil, g.Frame)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			path := filepath.Join("testdata", g.Name+".bin")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatalf("write fixture: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s\n got %x\nwant %x", path, got, want)
			}
			dec, n, err := DecodeFrame(want)
			if err != nil {
				t.Fatalf("fixture does not decode: %v", err)
			}
			if n != len(want) {
				t.Errorf("fixture decode consumed %d of %d bytes", n, len(want))
			}
			if !reflect.DeepEqual(dec, g.Frame) {
				t.Errorf("fixture decodes to\n %+v\nwant\n %+v", dec, g.Frame)
			}
		})
	}
}
