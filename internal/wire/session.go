package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("wire: server closed")

// ErrGoAway reports a request the server announced it will never
// answer: the session drained before the frame was accepted.
var ErrGoAway = errors.New("wire: server going away")

// Config sizes a wire Server.
type Config struct {
	// MaxFrame bounds a frame payload in bytes; default DefaultMaxFrame.
	// Enforced against the length prefix before any allocation.
	MaxFrame uint32
	// InFlight is the number of check batches a session may have in
	// flight at once (one pooled decode/submit job each); default 8.
	// Further check frames wait in the kernel socket buffer, so a
	// hostile pipeliner cannot balloon the session's memory.
	InFlight int
	// HandshakeTimeout bounds the wait for the Hello frame; default 10s.
	HandshakeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.InFlight <= 0 {
		c.InFlight = 8
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	return c
}

// Server accepts streaming wire sessions against a tenant registry:
// the binary face of ringd, sharing the registry (and therefore the
// /v1/t/{name} semantics) with the HTTP handler.
type Server struct {
	reg *tenant.Registry
	cfg Config

	mu        sync.Mutex
	listeners map[net.Listener]struct{} //ring:guarded mu
	sessions  map[*session]struct{}     //ring:guarded mu
	closed    bool                      //ring:guarded mu
	wg        sync.WaitGroup
}

// NewServer builds a wire server over reg.
func NewServer(reg *tenant.Registry, cfg Config) *Server {
	return &Server{
		reg:       reg,
		cfg:       cfg.withDefaults(),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
	}
}

// Serve accepts sessions on ln until the listener fails or the server
// shuts down. It always returns a non-nil error; after Shutdown the
// error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return ErrServerClosed
			}
			return err
		}
		sess := s.newSession(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.serve()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Shutdown stops accepting sessions and drains the live ones: each
// session stops reading, answers every frame it had accepted, sends
// GoAway and closes. Accepted batches are never dropped. When ctx
// expires first the remaining connections are force-closed and the
// context error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	lns := make([]net.Listener, 0, len(s.listeners))
	for ln := range s.listeners {
		lns = append(lns, ln)
	}
	live := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, sess := range live {
		sess.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// job is one pooled check batch in flight: the decode target, the
// response scratch buffer, and the correlation ID to answer under.
type job struct {
	corr  uint64
	batch Batch
	out   []byte
}

// session is one accepted wire connection.
type session struct {
	srv  *Server
	conn net.Conn
	cfg  Config

	t       *tenant.Tenant
	version uint16

	rbuf []byte // reader scratch, reused frame to frame

	wmu  sync.Mutex
	wbuf []byte //ring:guarded wmu (inline-response scratch)

	jobs chan *job
	free chan *job

	// sub is the session's lease subscription (nil until the client
	// sends Subscribe); pusherStop/pusherWG bound the pusher goroutine
	// that turns its mailbox into Shootdown frames. Both are touched
	// only by the serve goroutine (readLoop runs on it).
	sub        *tenant.Subscriber
	pusherStop chan struct{}
	pusherWG   sync.WaitGroup

	draining atomic.Bool
}

func (s *Server) newSession(conn net.Conn) *session {
	return &session{
		srv:  s,
		conn: conn,
		cfg:  s.cfg,
		jobs: make(chan *job, s.cfg.InFlight),
		free: make(chan *job, s.cfg.InFlight),
	}
}

// serve runs the session to completion: handshake, responder pool,
// read loop, drain. It owns the connection's lifetime.
func (s *session) serve() {
	defer s.conn.Close()
	if !s.handshake() {
		return
	}
	for i := 0; i < s.cfg.InFlight; i++ {
		s.free <- &job{}
	}
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.InFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.responder()
		}()
	}
	s.readLoop()
	// The reader accepts no more frames. Closing jobs lets the
	// responders finish everything already accepted before exiting, so
	// a graceful drain never drops an accepted batch.
	close(s.jobs)
	wg.Wait()
	// Stop the shootdown pusher before any GoAway: GoAway must be the
	// last frame on the wire, and a push racing it would break that.
	if s.sub != nil {
		close(s.pusherStop)
		s.pusherWG.Wait()
		s.t.Unsubscribe(s.sub)
	}
	if s.draining.Load() {
		s.wmu.Lock()
		s.wbuf = EncodeGoAway(s.wbuf)
		_, _ = s.conn.Write(s.wbuf)
		s.wmu.Unlock()
	}
}

// drain begins a graceful close: stop reading (a past read deadline
// wakes the blocked reader), answer everything accepted, GoAway.
func (s *session) drain() {
	s.draining.Store(true)
	_ = s.conn.SetReadDeadline(time.Unix(1, 0))
}

// handshake reads the Hello frame, negotiates a version, binds the
// tenant and answers Welcome. It reports whether the session may
// proceed; on failure an Error frame has been written (best effort).
func (s *session) handshake() bool {
	_ = s.conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	h, payload, err := readFrame(s.conn, &s.rbuf, s.cfg.MaxFrame)
	if err != nil {
		s.frameError(err)
		return false
	}
	if h.Type != FrameHello || h.Corr != 0 {
		s.writeError(0, CodeBadRequest, "expected hello")
		return false
	}
	hello, err := decodeHello(payload)
	if err != nil {
		s.writeError(0, CodeBadRequest, err.Error())
		return false
	}
	v := Version
	if hello.MaxVersion < v {
		v = hello.MaxVersion
	}
	if v < hello.MinVersion {
		s.writeError(0, CodeBadRequest, ErrVersion.Error())
		return false
	}
	name := hello.Tenant
	if name == "" {
		name = tenant.DefaultTenant
	}
	t, ok := s.srv.reg.Get(name)
	if !ok {
		s.writeError(0, CodeNotFound, fmt.Sprintf("unknown tenant %q", name))
		return false
	}
	switch t.State() {
	case tenant.StateActive, tenant.StateSealed:
	case tenant.StateLoading, tenant.StateDraining:
		s.writeError(0, CodeUnavailable, t.State().String())
		return false
	default:
		s.writeError(0, CodeNotFound, fmt.Sprintf("unknown tenant %q", name))
		return false
	}
	s.t = t
	s.version = v
	s.wmu.Lock()
	b, werr := EncodeWelcome(s.wbuf, Welcome{Version: v, Health: s.health()})
	if werr == nil {
		s.wbuf = b
		_, werr = s.conn.Write(b)
	}
	s.wmu.Unlock()
	if werr != nil {
		return false
	}
	_ = s.conn.SetReadDeadline(time.Time{})
	return !s.draining.Load()
}

// health reports the bound tenant's image shape.
func (s *session) health() Health {
	st := s.t.Store()
	return Health{
		Segments:     uint32(len(st.Segments())),
		Shards:       uint32(st.Shards()),
		Workers:      uint32(s.t.Service().Workers()),
		StoreVersion: st.Version(),
	}
}

// readLoop accepts frames until the connection fails, the session
// drains, or the client commits a protocol error. Check batches are
// handed to the responder pool (bounded by the free-job pool — the
// session's backpressure); mutations and pings are answered inline,
// off the hot path.
func (s *session) readLoop() {
	for {
		h, payload, err := readFrame(s.conn, &s.rbuf, s.cfg.MaxFrame)
		if err != nil {
			if !s.draining.Load() {
				s.frameError(err)
			}
			return
		}
		switch h.Type {
		case FrameCheck:
			j := <-s.free
			if derr := DecodeCheckInto(payload, &j.batch); derr != nil {
				s.free <- j
				s.writeError(h.Corr, CodeBadRequest, derr.Error())
				return
			}
			j.corr = h.Corr
			s.jobs <- j
		case FrameMutate:
			if !s.handleMutate(h.Corr, payload) {
				return
			}
		case FramePing:
			s.handlePing(h.Corr)
		case FrameSubscribe:
			if !s.handleSubscribe(h.Corr, payload) {
				return
			}
		default:
			s.writeError(h.Corr, CodeBadRequest, "unexpected frame type")
			return
		}
	}
}

// frameError answers a framing failure (torn or malformed frame,
// oversize length prefix) with a best-effort session-level Error
// frame. Plain connection errors (EOF, reset) get nothing.
func (s *session) frameError(err error) {
	if errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrBadFrame) {
		s.writeError(0, CodeBadRequest, err.Error())
	}
}

// responder serves pooled check jobs until the jobs channel closes.
//
//ring:hotpath
func (s *session) responder() {
	for j := range s.jobs {
		s.serveJob(j)
		s.free <- j
	}
}

// serveJob answers one decoded check batch: submit through the
// tenant's zero-alloc decision path, encode the decisions into the
// job's pooled buffer, write. Submission failures answer as Error
// frames with the HTTP status mapping.
//
//ring:hotpath
func (s *session) serveJob(j *job) {
	if len(j.batch.Queries) == 0 {
		s.writeError(j.corr, CodeBadRequest, "empty batch")
		return
	}
	if err := s.t.SubmitInto(context.Background(), j.batch.Queries, j.batch.Dst); err != nil {
		code := submitCode(err)
		s.writeError(j.corr, code, err.Error())
		return
	}
	out, err := EncodeDecisions(j.out, j.corr, j.batch.Dst)
	if err != nil {
		// Service decisions always fit the wire widths; defensive only.
		s.writeError(j.corr, CodeBadRequest, err.Error())
		return
	}
	j.out = out
	s.wmu.Lock()
	_, _ = s.conn.Write(out)
	s.wmu.Unlock()
}

// submitCode maps a check-path rejection to its error-frame code,
// mirroring the HTTP status the JSON surface answers for the same
// condition.
//
//ring:hotpath
func submitCode(err error) uint16 {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		return CodeShed
	case errors.Is(err, service.ErrBatchTooLarge):
		return CodeBadRequest
	case errors.Is(err, tenant.ErrLoading), errors.Is(err, tenant.ErrDraining),
		errors.Is(err, service.ErrClosed), errors.Is(err, tenant.ErrTenantNotFound):
		return CodeUnavailable
	default:
		return CodeUnavailable
	}
}

// mutateCode maps a lifecycle rejection of a mutation to its
// error-frame code (the tenant HTTP handler's mapping: seal and drain
// conflicts are 409).
func mutateCode(err error) uint16 {
	switch {
	case errors.Is(err, tenant.ErrSealed), errors.Is(err, tenant.ErrDraining):
		return CodeConflict
	case errors.Is(err, tenant.ErrLoading):
		return CodeUnavailable
	case errors.Is(err, tenant.ErrTenantNotFound):
		return CodeNotFound
	default:
		return CodeBadRequest
	}
}

// handleMutate answers one Mutate frame inline on the reader. It
// reports false on a protocol error (malformed frame), which closes
// the session; semantic rejections answer an Error frame and keep the
// session open.
func (s *session) handleMutate(corr uint64, payload []byte) bool {
	m, err := decodeMutate(payload)
	if err != nil {
		s.writeError(corr, CodeBadRequest, err.Error())
		return false
	}
	if lerr := s.t.Mutable(); lerr != nil {
		s.writeError(corr, mutateCode(lerr), lerr.Error())
		return true
	}
	st := s.t.Store()
	segno := m.Segno
	if m.Segment != "" {
		n, ok := st.Segno(m.Segment)
		if !ok {
			s.writeError(corr, CodeNotFound, fmt.Sprintf("unknown segment %q", m.Segment))
			return true
		}
		segno = n
	}
	switch m.Op {
	case MutSetBrackets:
		if verr := m.Brackets.Validate(); verr != nil {
			s.writeError(corr, CodeBadRequest, verr.Error())
			return true
		}
		err = st.SetBrackets(segno, m.Read, m.Write, m.Execute, m.Brackets, m.Gates)
	case MutRevoke:
		err = st.Revoke(segno)
	default:
		err = st.Restore(segno)
	}
	if err != nil {
		s.writeError(corr, CodeBadRequest, err.Error())
		return true
	}
	s.wmu.Lock()
	s.wbuf = EncodeMutated(s.wbuf, corr, st.Version())
	_, _ = s.conn.Write(s.wbuf)
	s.wmu.Unlock()
	return true
}

// handleSubscribe registers the session for descriptor-invalidation
// pushes and acks with a Pong (its StoreVersion is the subscription's
// starting epoch sum). Registration happens BEFORE the ack is written,
// so no mutation can fall between the ack and the first shootdown the
// client could hear about; the pusher starts after the ack, so pushes
// never precede it on the wire. A repeated Subscribe just re-acks.
func (s *session) handleSubscribe(corr uint64, payload []byte) bool {
	if len(payload) != 0 {
		s.writeError(corr, CodeBadRequest, "subscribe carries no payload")
		return false
	}
	first := s.sub == nil
	if first {
		s.sub = s.t.Subscribe()
		s.pusherStop = make(chan struct{})
	}
	s.handlePing(corr)
	if first {
		s.pusherWG.Add(1)
		go s.pusher()
	}
	return true
}

// pusher drains the session's lease mailbox into Shootdown frames (and
// a final LeaseExpire when the tenant revokes the subscription). It
// runs until the subscription expires or the session closes; serve()
// joins it before writing GoAway.
func (s *session) pusher() {
	defer s.pusherWG.Done()
	sub := s.sub
	for {
		select {
		case <-s.pusherStop:
			return
		case <-sub.Notify():
		}
		if sub.Expired() {
			s.writeLeaseExpire(CodeUnavailable)
			return
		}
		sub.Drain(func(shard int, segno uint32, epoch uint64) {
			s.writeShootdown(Shootdown{Shard: uint32(shard), Segno: segno, Epoch: epoch})
		})
	}
}

// writeShootdown pushes one Shootdown frame under the write lock.
func (s *session) writeShootdown(sd Shootdown) {
	s.wmu.Lock()
	b, err := EncodeShootdown(s.wbuf, sd)
	if err == nil {
		s.wbuf = b
		_, _ = s.conn.Write(b)
	}
	s.wmu.Unlock()
}

// writeLeaseExpire pushes the subscription-revoked frame.
func (s *session) writeLeaseExpire(code uint16) {
	s.wmu.Lock()
	b, err := EncodeLeaseExpire(s.wbuf, LeaseExpire{Code: code})
	if err == nil {
		s.wbuf = b
		_, _ = s.conn.Write(b)
	}
	s.wmu.Unlock()
}

// handlePing answers one Ping frame inline on the reader.
func (s *session) handlePing(corr uint64) {
	s.wmu.Lock()
	s.wbuf = EncodePong(s.wbuf, corr, s.health())
	_, _ = s.conn.Write(s.wbuf)
	s.wmu.Unlock()
}

// writeError writes an Error frame under the write lock, reusing the
// session's scratch buffer. Write failures are ignored; the reader
// notices the dead connection.
//
//ring:hotpath
func (s *session) writeError(corr uint64, code uint16, msg string) {
	s.wmu.Lock()
	b, err := EncodeError(s.wbuf, corr, code, msg)
	if err == nil {
		s.wbuf = b
		_, _ = s.conn.Write(b)
	}
	s.wmu.Unlock()
}

// readFrame reads one frame from r into *buf, which is grown as
// needed and reused across calls. The length prefix is bounded by max
// BEFORE the payload buffer grows, so a hostile prefix cannot force an
// allocation. A frame torn mid-payload surfaces io.ErrUnexpectedEOF.
//
//ring:hotpath
func readFrame(r io.Reader, buf *[]byte, max uint32) (Header, []byte, error) {
	b := *buf
	if cap(b) < HeaderLen {
		//ring:allow first-frame buffer allocation; steady state reuses capacity
		b = make([]byte, HeaderLen)
		*buf = b
	}
	if _, err := io.ReadFull(r, b[:HeaderLen]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(b[:HeaderLen])
	if err != nil {
		return h, nil, err
	}
	if h.Len > max {
		return h, nil, ErrFrameTooLarge
	}
	n := int(h.Len)
	b = ensure(b, n)
	*buf = b
	if _, err := io.ReadFull(r, b[:n]); err != nil {
		return h, nil, err
	}
	return h, b[:n], nil
}
