package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/tenant"
)

func TestClientCheckMutatePing(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	w := c.Welcome()
	if w.Version != Version || w.Segments != 3 || w.Shards != 8 || w.Workers != 1 || w.StoreVersion != 0 {
		t.Errorf("welcome = %+v", w)
	}

	ds, err := c.Check(goldenQueries()...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	tnt, _ := reg.Get(tenant.DefaultTenant)
	want, err := tnt.Submit(context.Background(), goldenQueries())
	if err != nil {
		t.Fatalf("in-process submit: %v", err)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("decision %d: wire %+v, in-process %+v", i, ds[i], want[i])
		}
	}

	ver, err := c.Mutate(Mutation{Op: MutSetBrackets, Segment: "data", Read: true, Write: true,
		Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}})
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if ver != 2 {
		t.Errorf("store version after mutate = %d, want 2", ver)
	}
	after, err := c.Check(service.Query{Op: service.OpAccess, Ring: 4, Segment: "data", Wordno: 3})
	if err != nil {
		t.Fatalf("check after mutate: %v", err)
	}
	if after[0].Allowed || after[0].VersionLo != 2 || after[0].VersionHi != 2 {
		t.Errorf("post-mutation decision = %+v", after[0])
	}

	h, err := c.Ping()
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if h.StoreVersion != 2 || h.Segments != 3 {
		t.Errorf("pong health = %+v", h)
	}

	// Semantic rejections answer error frames and keep the session
	// usable.
	if _, err := c.Mutate(Mutation{Op: MutRevoke, Segment: "nonesuch"}); err == nil {
		t.Error("mutate of unknown segment succeeded")
	} else {
		var ef *ErrFrame
		if !errors.As(err, &ef) || ef.Code != CodeNotFound || ef.Msg != `unknown segment "nonesuch"` {
			t.Errorf("unknown segment error = %v", err)
		}
	}
	if err := c.CheckInto(nil, nil); err == nil {
		t.Error("empty batch succeeded")
	} else {
		var ef *ErrFrame
		if !errors.As(err, &ef) || ef.Code != CodeBadRequest || ef.Msg != "empty batch" {
			t.Errorf("empty batch error = %v", err)
		}
	}
	if _, err := c.Check(service.Query{Op: service.OpAccess, Ring: 1, Segment: "data"}); err != nil {
		t.Errorf("session unusable after semantic errors: %v", err)
	}
}

func TestClientPipelinesOutOfOrder(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 4})
	_, addr := startWireServer(t, reg, Config{})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := []service.Query{
				{Op: service.OpAccess, Ring: 3, Segno: uint32(g % 3), Wordno: 1},
				{Op: service.OpCall, Ring: 4, Segno: 1, Wordno: 1},
			}
			dst := make([]service.Decision, len(queries))
			for i := 0; i < rounds; i++ {
				if err := c.CheckInto(queries, dst); err != nil {
					errc <- err
					return
				}
				if dst[1].Outcome != core.CallDownward.String() {
					errc <- errors.New("wrong decision for pipelined call query")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestHandshakeRejections(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})

	// expectHandshakeError writes raw as the first bytes and asserts
	// the server answers a session-level Error frame with code, then
	// closes.
	expectHandshakeError := func(t *testing.T, raw []byte, code uint16) {
		t.Helper()
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		if _, err := conn.Write(raw); err != nil {
			t.Fatalf("write: %v", err)
		}
		h, payload, err := readConnFrame(t, conn)
		if err != nil {
			t.Fatalf("read error frame: %v", err)
		}
		if h.Type != FrameError || h.Corr != 0 {
			t.Fatalf("answered %v corr %d, want session error", h.Type, h.Corr)
		}
		e, err := decodeError(payload)
		if err != nil {
			t.Fatalf("decode error frame: %v", err)
		}
		if e.Code != code {
			t.Errorf("error code %d (%q), want %d", e.Code, e.Msg, code)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var buf []byte
		if _, _, err := readFrame(conn, &buf, DefaultMaxFrame); err == nil {
			t.Error("session stayed open after handshake rejection")
		}
	}

	t.Run("not hello", func(t *testing.T) {
		expectHandshakeError(t, EncodePing(nil, 1), CodeBadRequest)
	})
	t.Run("bad magic", func(t *testing.T) {
		hello, err := EncodeHello(nil, Hello{MinVersion: 1, MaxVersion: 1})
		if err != nil {
			t.Fatal(err)
		}
		hello[HeaderLen] ^= 0xFF
		expectHandshakeError(t, hello, CodeBadRequest)
	})
	t.Run("disjoint versions", func(t *testing.T) {
		hello, err := EncodeHello(nil, Hello{MinVersion: Version + 1, MaxVersion: Version + 4})
		if err != nil {
			t.Fatal(err)
		}
		expectHandshakeError(t, hello, CodeBadRequest)
	})
	t.Run("unknown tenant", func(t *testing.T) {
		hello, err := EncodeHello(nil, Hello{MinVersion: 1, MaxVersion: 1, Tenant: "ghost"})
		if err != nil {
			t.Fatal(err)
		}
		expectHandshakeError(t, hello, CodeNotFound)
	})
	t.Run("client surfaces rejection", func(t *testing.T) {
		_, err := Dial(addr, ClientConfig{Tenant: "ghost"})
		var ef *ErrFrame
		if !errors.As(err, &ef) || ef.Code != CodeNotFound {
			t.Errorf("dial to unknown tenant = %v", err)
		}
	})
}

func TestSealedTenantOnWire(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})
	if err := reg.Seal(tenant.DefaultTenant); err != nil {
		t.Fatalf("seal: %v", err)
	}
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial to sealed tenant: %v", err)
	}
	defer c.Close()
	if _, err := c.Check(service.Query{Op: service.OpAccess, Ring: 3, Segment: "data"}); err != nil {
		t.Errorf("check against sealed tenant: %v", err)
	}
	// The seal race on the wire: a 409-equivalent error frame, exactly
	// the HTTP conflict mapping.
	_, err = c.Mutate(Mutation{Op: MutRevoke, Segment: "data"})
	var ef *ErrFrame
	if !errors.As(err, &ef) || ef.Code != CodeConflict || ef.Msg != tenant.ErrSealed.Error() {
		t.Errorf("mutate against sealed tenant = %v, want 409 %q", err, tenant.ErrSealed.Error())
	}
	tnt, _ := reg.Get(tenant.DefaultTenant)
	if tnt.DeniedMutations() == 0 {
		t.Error("wire mutation denial not counted")
	}
}

func TestSessionTornFrame(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	srv, addr := startWireServer(t, reg, Config{})
	conn := dialRaw(t, addr)
	frame, err := EncodeCheck(nil, 1, goldenQueries())
	if err != nil {
		t.Fatal(err)
	}
	// Tear the frame mid-payload and drop the connection.
	if _, err := conn.Write(frame[:len(frame)/2]); err != nil {
		t.Fatalf("write torn frame: %v", err)
	}
	conn.Close()

	// The server must shrug the torn session off: a fresh session
	// still serves, and a drain completes promptly (no goroutine is
	// stuck on the dead connection).
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial after torn frame: %v", err)
	}
	if _, err := c.Check(service.Query{Op: service.OpAccess, Ring: 3, Segment: "data"}); err != nil {
		t.Errorf("check after torn frame: %v", err)
	}
	c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown after torn frame: %v", err)
	}
}

func TestSessionOversizeFrameRejectedBeforeAllocation(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{MaxFrame: 1024})
	conn := dialRaw(t, addr)

	// A hostile length prefix: 1 GiB announced, nothing sent. The
	// bound check runs before any payload buffer grows, so the server
	// answers an error frame immediately instead of trying to read or
	// allocate the announced gigabyte.
	var hdr [HeaderLen]byte
	PutHeader(hdr[:], Header{Len: 1 << 30, Type: FrameCheck, Corr: 5})
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatalf("write header: %v", err)
	}
	h, payload, err := readConnFrame(t, conn)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if h.Type != FrameError {
		t.Fatalf("answered %v, want error frame", h.Type)
	}
	e, err := decodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBadRequest || e.Msg != ErrFrameTooLarge.Error() {
		t.Errorf("oversize answer = %d %q", e.Code, e.Msg)
	}
	var buf []byte
	if _, _, err := readFrame(conn, &buf, DefaultMaxFrame); err == nil {
		t.Error("session stayed open after oversize frame")
	}
}

// TestSessionBackpressureShed floods a 1-worker depth-1 tenant whose
// queue is held full by in-process blocker batches: overload must
// answer 429-coded error frames — not hang, not drop — and every
// correlation ID must get exactly one response (conservation). A
// second wave after the blockers stop proves the session recovers and
// serves again.
func TestSessionBackpressureShed(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1, QueueDepth: 1, BatchLimit: 4096})
	_, addr := startWireServer(t, reg, Config{InFlight: 16})
	conn := dialRaw(t, addr)
	tnt, _ := reg.Get(tenant.DefaultTenant)

	queries := make([]service.Query, 64)
	for i := range queries {
		queries[i] = service.Query{Op: service.OpAccess, Ring: 3, Segno: uint32(i % 3), Wordno: 1}
	}
	const shedWave, servedWave = 256, 64
	const frames = shedWave + servedWave

	// The response reader runs concurrently with the flood so neither
	// side can stall on a full socket buffer.
	type tally struct {
		answered     map[uint64]int
		shed, served int
		err          error
	}
	results := make(chan tally, 1)
	firstWave := make(chan struct{})
	go func() {
		res := tally{answered: make(map[uint64]int, frames)}
		signalled := false
		var rbuf []byte
		for {
			if !signalled && len(res.answered) == shedWave {
				signalled = true
				close(firstWave)
			}
			_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			h, payload, err := readFrame(conn, &rbuf, DefaultMaxFrame)
			if err != nil {
				if err != io.EOF {
					res.err = err
				}
				results <- res
				return
			}
			res.answered[h.Corr]++
			switch h.Type {
			case FrameDecisions:
				n, derr := DecodeDecisionsInto(payload, make([]service.Decision, len(queries)))
				if derr != nil || n != len(queries) {
					res.err = fmt.Errorf("decisions frame corr %d: n=%d err=%v", h.Corr, n, derr)
					results <- res
					return
				}
				res.served++
			case FrameError:
				e, derr := decodeError(payload)
				if derr != nil {
					res.err = derr
					results <- res
					return
				}
				if e.Code != CodeShed || e.Msg != service.ErrQueueFull.Error() {
					res.err = fmt.Errorf("error frame corr %d: %d %q, want %d %q",
						h.Corr, e.Code, e.Msg, CodeShed, service.ErrQueueFull.Error())
					results <- res
					return
				}
				res.shed++
			default:
				res.err = fmt.Errorf("unexpected frame %v for corr %d", h.Type, h.Corr)
				results <- res
				return
			}
		}
	}()

	// Blockers: big in-process batches that keep the single worker busy
	// and the depth-1 queue full while the first wave floods in.
	stop := make(chan struct{})
	var bwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			big := make([]service.Query, 4096)
			for j := range big {
				big[j] = service.Query{Op: service.OpAccess, Ring: 3, Segno: uint32(j % 3)}
			}
			dst := make([]service.Decision, len(big))
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = tnt.SubmitInto(context.Background(), big, dst)
			}
		}()
	}

	var wbuf []byte
	writeWave := func(lo, hi uint64) {
		for corr := lo; corr <= hi; corr++ {
			b, err := EncodeCheck(wbuf, corr, queries)
			if err != nil {
				t.Fatal(err)
			}
			wbuf = b
			if _, err := conn.Write(b); err != nil {
				t.Fatalf("write frame %d: %v", corr, err)
			}
		}
	}
	writeWave(1, shedWave)
	// Hold the blockers until every first-wave response has landed:
	// socket buffering means the server processes the flood long after
	// the writes return.
	select {
	case <-firstWave:
	case res := <-results:
		t.Fatalf("reader quit before the first wave resolved: %v (answered %d)", res.err, len(res.answered))
	}
	close(stop)
	bwg.Wait()
	writeWave(shedWave+1, frames)
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatalf("close write: %v", err)
	}

	res := <-results
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.answered) != frames {
		t.Errorf("answered %d of %d correlation IDs", len(res.answered), frames)
	}
	for corr, n := range res.answered {
		if corr == 0 || corr > frames {
			t.Errorf("response for unsent correlation %d", corr)
		}
		if n != 1 {
			t.Errorf("correlation %d answered %d times", corr, n)
		}
	}
	if res.shed == 0 {
		t.Error("no batch shed through a held depth-1 queue")
	}
	if res.served == 0 {
		t.Error("no batch served after the blockers released")
	}
	t.Logf("served %d, shed %d", res.served, res.shed)
}

// TestGracefulDrainKeepsAcceptedBatches shuts the server down while
// clients are mid-pipeline: Shutdown must drain (not force-close),
// every call must resolve (complete or ErrGoAway — never hang), and
// the stream must end with GoAway after the last response.
func TestGracefulDrainKeepsAcceptedBatches(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 2})
	srv, addr := startWireServer(t, reg, Config{})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	const goroutines = 6
	var completed, cut int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queries := []service.Query{{Op: service.OpAccess, Ring: 3, Segno: 0, Wordno: 1}}
			dst := make([]service.Decision, 1)
			for {
				err := c.CheckInto(queries, dst)
				mu.Lock()
				if err == nil {
					if !dst[0].Allowed {
						t.Error("drained mid-batch: wrong decision")
					}
					completed++
				} else {
					cut++
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	wg.Wait()
	if completed == 0 {
		t.Error("no call completed before drain")
	}
	t.Logf("completed %d calls, %d cut by drain", completed, cut)
}

// TestGoAwayIsLastFrame drives the drain at the byte level: after
// Shutdown, the stream is zero or more responses, then exactly one
// GoAway, then EOF.
func TestGoAwayIsLastFrame(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	srv, addr := startWireServer(t, reg, Config{})
	conn := dialRaw(t, addr)

	var wbuf []byte
	for corr := uint64(1); corr <= 32; corr++ {
		b, err := EncodeCheck(wbuf, corr, []service.Query{
			{Op: service.OpAccess, Ring: 3, Segno: 0, Wordno: 1}})
		if err != nil {
			t.Fatal(err)
		}
		wbuf = b
		if _, err := conn.Write(b); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	sawGoAway := false
	var rbuf []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		h, _, err := readFrame(conn, &rbuf, DefaultMaxFrame)
		if err != nil {
			break
		}
		if sawGoAway {
			t.Fatalf("frame %v after goaway", h.Type)
		}
		switch h.Type {
		case FrameDecisions:
		case FrameGoAway:
			sawGoAway = true
		default:
			t.Fatalf("unexpected frame %v during drain", h.Type)
		}
	}
	if !sawGoAway {
		t.Error("drain ended without goaway")
	}
	if err := <-done; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// nopConn is a write-discarding net.Conn for the white-box zero-alloc
// gate.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// TestWireCheckZeroAlloc gates the steady-state session loop — read
// frame, decode batch, submit, encode decisions, write — at zero heap
// allocations per batch (the wire analogue of TestSubmitIntoZeroAlloc,
// backed statically by ringvet's hotpath analyzer).
func TestWireCheckZeroAlloc(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	tnt, _ := reg.Get(tenant.DefaultTenant)
	s := &session{conn: nopConn{}, cfg: Config{}.withDefaults(), t: tnt}

	// Segno-form queries: the zero-alloc contract covers frames that
	// carry no segment names (name decode allocates its string, by
	// design — the //ring:allow lines in getPackedString).
	queries := []service.Query{
		{Op: service.OpAccess, Ring: 4, Segno: 0, Wordno: 3, Kind: core.AccessRead},
		{Op: service.OpAccess, Ring: 5, Segno: 0, Kind: core.AccessWrite},
		{Op: service.OpCall, Ring: 4, Segno: 1, Wordno: 1},
		{Op: service.OpReturn, Ring: 2, Segno: 1, EffRing: ringp(3)},
		{Op: service.OpEffRing, Ring: 2, Chain: []service.ChainStep{{PR: true, Ring: 3}, {Segno: 2, Ring: 1}}},
	}
	frame, err := EncodeCheck(nil, 9, queries)
	if err != nil {
		t.Fatal(err)
	}
	br := bytes.NewReader(frame)
	j := &job{}
	var rbuf []byte
	allocs := testing.AllocsPerRun(200, func() {
		br.Reset(frame)
		h, payload, err := readFrame(br, &rbuf, DefaultMaxFrame)
		if err != nil {
			panic(err)
		}
		if err := DecodeCheckInto(payload, &j.batch); err != nil {
			panic(err)
		}
		j.corr = h.Corr
		s.serveJob(j)
	})
	if allocs != 0 {
		t.Fatalf("steady-state wire check loop allocates %.1f times per batch, want 0", allocs)
	}
	// Sanity: the loop produced real decisions, not error frames.
	if !j.batch.Dst[0].Allowed || j.batch.Dst[2].Outcome != core.CallDownward.String() {
		t.Fatalf("zero-alloc loop produced wrong decisions: %+v", j.batch.Dst)
	}
	if binary.BigEndian.Uint64(j.out[8:16]) != 9 {
		t.Fatalf("response frame lost its correlation ID")
	}
}
