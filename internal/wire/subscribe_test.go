package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tenant"
)

// TestSubscribeShootdownStream checks the invalidation feed end to
// end: a subscribed client receives a Shootdown push for the mutated
// shard with even, strictly increasing epochs, and the stream
// eventually names the shard's final publication epoch. Coalescing may
// skip intermediate epochs — a later epoch subsumes an earlier one —
// but may never reorder or invent them.
func TestSubscribeShootdownStream(t *testing.T) {
	const mutations = 8
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})

	pushes := make(chan Shootdown, 64)
	c, err := Dial(addr, ClientConfig{
		OnShootdown: func(sd Shootdown) { pushes <- sd },
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	h, err := c.Subscribe()
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if h.StoreVersion != 0 {
		t.Errorf("subscription starting epoch sum = %d, want 0", h.StoreVersion)
	}

	for i := 0; i < mutations; i++ {
		b := core.Brackets{R1: 2, R2: 4, R3: 4}
		if i%2 == 0 {
			b = core.Brackets{R1: 0, R2: 1, R3: 1}
		}
		if _, err := c.Mutate(Mutation{Op: MutSetBrackets, Segment: "data",
			Read: true, Write: true, Brackets: b}); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}

	// "data" is segno 0, shard 0: after K mutations its epoch is 2K.
	var got []Shootdown
	deadline := time.After(5 * time.Second)
	for {
		var sd Shootdown
		select {
		case sd = <-pushes:
		case <-deadline:
			t.Fatalf("final shootdown never arrived; got %v", got)
		}
		if sd.Shard != 0 || sd.Segno != 0 {
			t.Fatalf("shootdown names shard %d segno %d, want 0/0", sd.Shard, sd.Segno)
		}
		if sd.Epoch%2 != 0 || sd.Epoch == 0 || sd.Epoch > 2*mutations {
			t.Fatalf("impossible shootdown epoch %d", sd.Epoch)
		}
		if len(got) > 0 && sd.Epoch <= got[len(got)-1].Epoch {
			t.Fatalf("shootdown epochs not increasing: %v then %d", got, sd.Epoch)
		}
		got = append(got, sd)
		if sd.Epoch == 2*mutations {
			break
		}
	}

	// Subscribe is idempotent: a re-subscribe re-acks on the same
	// stream, and the next mutation is still announced exactly once.
	if _, err := c.Subscribe(); err != nil {
		t.Fatalf("re-subscribe: %v", err)
	}
	if _, err := c.Mutate(Mutation{Op: MutRevoke, Segment: "data"}); err != nil {
		t.Fatalf("mutate after re-subscribe: %v", err)
	}
	select {
	case sd := <-pushes:
		if sd.Epoch != 2*mutations+2 {
			t.Errorf("post-resubscribe shootdown epoch = %d, want %d", sd.Epoch, 2*mutations+2)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no shootdown after re-subscribe")
	}
	select {
	case sd := <-pushes:
		t.Errorf("duplicate shootdown after re-subscribe: %+v", sd)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSubscribeRejectsPayload checks a Subscribe frame carrying bytes
// is a protocol error that closes the session.
func TestSubscribeRejectsPayload(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})
	conn := dialRaw(t, addr)

	b := make([]byte, HeaderLen+1)
	PutHeader(b, Header{Len: 1, Type: FrameSubscribe, Corr: 7})
	if _, err := conn.Write(b); err != nil {
		t.Fatalf("write: %v", err)
	}
	h, payload, err := readConnFrame(t, conn)
	if err != nil {
		t.Fatalf("read error frame: %v", err)
	}
	if h.Type != FrameError {
		t.Fatalf("answered %v, want error", h.Type)
	}
	if e, derr := decodeError(payload); derr != nil || e.Code != CodeBadRequest {
		t.Errorf("error frame = %+v, %v", e, derr)
	}
	if _, _, err := readConnFrame(t, conn); err == nil {
		t.Error("session stayed open after malformed subscribe")
	}
}

// TestLeaseExpireOnEvict checks draining a tenant revokes its
// sessions' subscriptions: the pusher sends one LeaseExpire with the
// unavailable code and no shootdown follows it.
func TestLeaseExpireOnEvict(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})

	expires := make(chan LeaseExpire, 4)
	pushes := make(chan Shootdown, 4)
	c, err := Dial(addr, ClientConfig{
		OnShootdown:   func(sd Shootdown) { pushes <- sd },
		OnLeaseExpire: func(le LeaseExpire) { expires <- le },
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Subscribe(); err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	if err := reg.Evict(tenant.DefaultTenant); err != nil {
		t.Fatalf("evict: %v", err)
	}
	select {
	case le := <-expires:
		if le.Code != CodeUnavailable {
			t.Errorf("lease-expire code = %d, want %d", le.Code, CodeUnavailable)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no lease-expire after evict")
	}
	select {
	case sd := <-pushes:
		t.Errorf("shootdown after lease-expire: %+v", sd)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSubscribedSessionGoAwayLast extends the GoAway-last invariant to
// subscribed sessions: during a graceful drain the shootdown pusher is
// joined first, so the byte stream is pushes and responses, then
// exactly one GoAway, then EOF — never a push after the GoAway.
func TestSubscribedSessionGoAwayLast(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	srv, addr := startWireServer(t, reg, Config{})
	conn := dialRaw(t, addr)

	sub := make([]byte, 0, HeaderLen)
	if _, err := conn.Write(EncodeSubscribe(sub, 1)); err != nil {
		t.Fatalf("write subscribe: %v", err)
	}
	if h, _, err := readConnFrame(t, conn); err != nil || h.Type != FramePong {
		t.Fatalf("subscribe ack = %v, %v", h.Type, err)
	}

	// A second session mutates so the subscribed one has pushes in
	// flight when the drain begins.
	mut, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("dial mutator: %v", err)
	}
	defer mut.Close()
	for i := 0; i < 4; i++ {
		if _, err := mut.Mutate(Mutation{Op: MutSetBrackets, Segment: "data",
			Read: true, Write: true, Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}}); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
	time.Sleep(100 * time.Millisecond) // let the pusher flush

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	sawGoAway := false
	shootdowns := 0
	var rbuf []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		h, _, err := readFrame(conn, &rbuf, DefaultMaxFrame)
		if err != nil {
			break
		}
		if sawGoAway {
			t.Fatalf("frame %v after goaway", h.Type)
		}
		switch h.Type {
		case FrameShootdown:
			shootdowns++
		case FrameGoAway:
			sawGoAway = true
		default:
			t.Fatalf("unexpected frame %v during drain", h.Type)
		}
	}
	if !sawGoAway {
		t.Error("drain ended without goaway")
	}
	if shootdowns == 0 {
		t.Error("no shootdown observed before goaway")
	}
	if err := <-done; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestSubscribePushDecodesStrictly checks the client tears the session
// down on a malformed push rather than dispatching it: a shootdown
// whose epoch is odd can never name a published snapshot.
func TestSubscribePushDecodesStrictly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var rbuf []byte
		if h, _, err := readFrame(conn, &rbuf, DefaultMaxFrame); err != nil || h.Type != FrameHello {
			return
		}
		w, _ := EncodeWelcome(nil, Welcome{Version: Version,
			Health: Health{Segments: 1, Shards: 1, Workers: 1}})
		if _, err := conn.Write(w); err != nil {
			return
		}
		// An odd epoch: structurally well-framed, semantically impossible.
		b := make([]byte, HeaderLen+16)
		PutHeader(b, Header{Len: 16, Type: FrameShootdown})
		b[HeaderLen+15] = 3
		_, _ = conn.Write(b)
		// Hold the conn open; the client must hang up on its own.
		var buf [1]byte
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		_, _ = conn.Read(buf[:])
	}()

	closed := make(chan error, 1)
	c, err := Dial(ln.Addr().String(), ClientConfig{
		OnShootdown: func(sd Shootdown) { t.Errorf("malformed push dispatched: %+v", sd) },
		OnClose:     func(err error) { closed <- err },
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("client kept session after malformed push")
	}
	if _, err := c.Ping(); err == nil {
		t.Error("session usable after malformed push")
	}
}

// TestSubscribeStartingEpochCoversGap checks the no-gap guarantee the
// ack's StoreVersion advertises: a mutation racing the subscribe is
// either reflected in the ack's epoch sum or announced by a shootdown,
// never silently lost.
func TestSubscribeStartingEpochCoversGap(t *testing.T) {
	reg := newTestRegistry(t, tenant.TenantConfig{Workers: 1})
	_, addr := startWireServer(t, reg, Config{})

	pushes := make(chan Shootdown, 16)
	c, err := Dial(addr, ClientConfig{
		OnShootdown: func(sd Shootdown) { pushes <- sd },
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Mutate before subscribing: the ack must carry the bumped epoch
	// sum, telling the cache nothing older than it is announced.
	tnt, _ := reg.Get(tenant.DefaultTenant)
	if err := tnt.Store().SetBrackets(0, true, true, false,
		core.Brackets{R1: 0, R2: 1, R3: 1}, 0); err != nil {
		t.Fatalf("pre-subscribe mutate: %v", err)
	}
	h, err := c.Subscribe()
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if h.StoreVersion != 2 {
		t.Errorf("ack epoch sum = %d, want 2 (pre-subscribe mutation visible)", h.StoreVersion)
	}

	// And one after: announced.
	if err := tnt.Store().SetBrackets(0, true, true, false,
		core.Brackets{R1: 2, R2: 4, R3: 4}, 0); err != nil {
		t.Fatalf("post-subscribe mutate: %v", err)
	}
	select {
	case sd := <-pushes:
		if sd.Epoch != 4 {
			t.Errorf("post-subscribe shootdown epoch = %d, want 4", sd.Epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-subscribe mutation never announced")
	}
}
