// Package wire is the binary face of the protection-decision daemon:
// a length-prefixed framing for decision batches over a persistent TCP
// connection, replacing the per-request parse-and-allocate cost of the
// HTTP/JSON surface with fixed-width fields packed into the simulator's
// own 36-bit words.
//
// The paper's argument is that the common-case protection check must
// not trap to the supervisor; this package applies the same argument to
// the network edge. A client opens one session, binds it to a tenant,
// and pipelines check frames continuously; responses carry the client's
// correlation IDs and may complete out of order, so the session keeps
// every decision worker busy without per-request connections, headers
// or JSON.
//
// # Frame layout
//
// Every frame is a 16-byte header followed by a payload:
//
//	offset  size  field
//	0       4     payload length (uint32, big endian; bounded by
//	              Config.MaxFrame BEFORE any allocation)
//	4       1     frame type
//	5       1     flags (must be 0 in version 1)
//	6       2     reserved (must be 0)
//	8       8     correlation ID (uint64, big endian; client-assigned,
//	              echoed on the response; 0 on Hello/Welcome/GoAway)
//
// Payload integers wider than a byte are big endian. 36-bit machine
// words travel as 8-byte big-endian integers whose top 28 bits must be
// zero; strings travel as a length word (byte count in the low 18 bits)
// followed by words packed four 9-bit characters each (word.PackChars'
// convention: high character first, NUL padded). Every reserved bit
// must be zero and every packed field canonical, so decoding a frame
// and re-encoding it reproduces the input byte for byte (fuzzed by
// FuzzDecodeFrame).
//
// # Version negotiation
//
// The first frame on a session must be Hello: magic "RING", the
// client's [min,max] supported protocol versions, and the tenant name
// the session binds to (empty means the daemon's default tenant). The
// server answers Welcome with the highest version both sides support —
// or an Error frame and a close when the ranges are disjoint — plus the
// bound tenant's image shape. All subsequent frames use the negotiated
// version. Version 1 is the only version; the header leaves flags and
// reserved fields for later versions to claim.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic opens every Hello/Welcome payload: "RING" in ASCII.
const Magic uint32 = 0x52494E47

// Version is the protocol version this package speaks.
const Version uint16 = 1

// HeaderLen is the fixed frame-header size in bytes.
const HeaderLen = 16

// DefaultMaxFrame bounds a frame payload (1 MiB): large enough for a
// BatchLimit-sized batch of worst-case queries, small enough that a
// hostile length prefix cannot balloon the session's buffers. The
// bound is enforced before any payload allocation.
const DefaultMaxFrame = 1 << 20

// FrameType names a frame.
type FrameType uint8

// Frame types. Requests carry client-assigned correlation IDs;
// responses echo them.
const (
	// FrameHello opens a session: magic, version range, tenant name.
	FrameHello FrameType = 1 + iota
	// FrameWelcome accepts a session: negotiated version, image shape.
	FrameWelcome
	// FrameCheck is a decision batch request.
	FrameCheck
	// FrameDecisions answers a Check with the batch's decisions.
	FrameDecisions
	// FrameMutate is a supervisor mutation (setbrackets/revoke/restore).
	FrameMutate
	// FrameMutated answers a Mutate with the store version.
	FrameMutated
	// FramePing is a liveness probe.
	FramePing
	// FramePong answers a Ping with the image shape.
	FramePong
	// FrameError answers any request that failed: a numeric code
	// mirroring the HTTP status mapping, plus a message.
	FrameError
	// FrameGoAway announces a graceful close: every accepted frame has
	// been answered and the server is about to close the connection.
	FrameGoAway
	// FrameSubscribe asks the server to push descriptor-invalidation
	// events for the session's tenant: the network analogue of joining
	// the shootdown Group. Answered with a Pong carrying the image
	// shape (StoreVersion is the subscription's starting epoch sum).
	FrameSubscribe
	// FrameShootdown is a server push (correlation 0) on a subscribed
	// session: a descriptor of the named shard changed, and the frame
	// names the shard's new (even) publication epoch. Every cached
	// decision for that shard tagged with an older epoch is stale.
	FrameShootdown
	// FrameLeaseExpire is a server push (correlation 0) revoking the
	// subscription itself: the tenant is draining or evicted, so no
	// further shootdowns will arrive and every cached decision must be
	// dropped.
	FrameLeaseExpire
)

// String returns the frame type's wire name.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameCheck:
		return "check"
	case FrameDecisions:
		return "decisions"
	case FrameMutate:
		return "mutate"
	case FrameMutated:
		return "mutated"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameError:
		return "error"
	case FrameGoAway:
		return "goaway"
	case FrameSubscribe:
		return "subscribe"
	case FrameShootdown:
		return "shootdown"
	case FrameLeaseExpire:
		return "lease_expire"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// valid reports whether t names a version-1 frame type.
//
//ring:hotpath
func (t FrameType) valid() bool { return t >= FrameHello && t <= FrameLeaseExpire }

// Error codes carried by FrameError, mirroring the HTTP status the
// JSON surface would answer for the same condition.
const (
	// CodeBadRequest: malformed frame or query (HTTP 400).
	CodeBadRequest uint16 = 400
	// CodeNotFound: unknown tenant or segment (HTTP 404).
	CodeNotFound uint16 = 404
	// CodeConflict: mutation against a sealed or draining tenant
	// (HTTP 409) — the seal/drain race answered as an error frame.
	CodeConflict uint16 = 409
	// CodeShed: the tenant's bounded decision queue was full; the batch
	// was shed, not queued (HTTP 429). Retry after backing off.
	CodeShed uint16 = 429
	// CodeUnavailable: the tenant is loading, draining or closed
	// (HTTP 503).
	CodeUnavailable uint16 = 503
)

// Header is a parsed frame header.
type Header struct {
	// Len is the payload length in bytes (the header excluded).
	Len uint32
	// Type is the frame type.
	Type FrameType
	// Corr is the correlation ID echoed between request and response.
	Corr uint64
}

// Framing errors.
var (
	// ErrFrameTooLarge reports a length prefix beyond the session's
	// frame bound; detected before any allocation.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size bound")
	// ErrBadFrame reports a malformed frame: unknown type, nonzero
	// reserved bits, or a payload that does not decode canonically.
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrBadMagic reports a Hello/Welcome without the RING magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion reports disjoint version ranges at the handshake.
	ErrVersion = errors.New("wire: no common protocol version")
	// ErrNotEncodable reports a query, decision or mutation whose
	// fields exceed the wire format's fixed widths.
	ErrNotEncodable = errors.New("wire: value exceeds wire field width")
)

// PutHeader writes h into b, which must hold HeaderLen bytes. The
// flags and reserved fields are written as zero.
//
//ring:hotpath
func PutHeader(b []byte, h Header) {
	binary.BigEndian.PutUint32(b[0:4], h.Len)
	b[4] = byte(h.Type)
	b[5] = 0
	binary.BigEndian.PutUint16(b[6:8], 0)
	binary.BigEndian.PutUint64(b[8:16], h.Corr)
}

// ParseHeader decodes and validates a frame header from b, which must
// hold at least HeaderLen bytes. The payload-length bound is the
// caller's to enforce (it depends on the session's configured maximum);
// everything else — known type, zero flags, zero reserved — is checked
// here.
//
//ring:hotpath
func ParseHeader(b []byte) (Header, error) {
	h := Header{
		Len:  binary.BigEndian.Uint32(b[0:4]),
		Type: FrameType(b[4]),
		Corr: binary.BigEndian.Uint64(b[8:16]),
	}
	if !h.Type.valid() || b[5] != 0 || b[6] != 0 || b[7] != 0 {
		return h, ErrBadFrame
	}
	return h, nil
}
