package wire

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/tenant"
)

// testSegments mirrors the image internal/service's tests (and the
// golden HTTP fixtures) are generated against, so wire decisions are
// comparable decision-for-decision with the recorded JSON.
func testSegments() []service.Segment {
	return []service.Segment{
		{Name: "data", Size: 16, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 32, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
		{Name: "secret", Size: 8, Read: true,
			Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}},
	}
}

// newTestRegistry loads testSegments as the default tenant.
func newTestRegistry(t *testing.T, tcfg tenant.TenantConfig) *tenant.Registry {
	t.Helper()
	reg := tenant.NewRegistry(tenant.Config{})
	if _, err := reg.Load(tenant.DefaultTenant, testSegments(), tcfg); err != nil {
		t.Fatalf("load default tenant: %v", err)
	}
	t.Cleanup(reg.Close)
	return reg
}

// startWireServer serves reg on a loopback listener and returns its
// address. The server is drained at cleanup.
func startWireServer(t *testing.T, reg *tenant.Registry, cfg Config) (*Server, string) {
	t.Helper()
	srv := NewServer(reg, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

// dialRaw opens a raw TCP connection and completes the Hello/Welcome
// handshake manually, returning the connection for byte-level frame
// tests.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	hello, err := EncodeHello(nil, Hello{MinVersion: Version, MaxVersion: Version})
	if err != nil {
		t.Fatalf("encode hello: %v", err)
	}
	if _, err := conn.Write(hello); err != nil {
		t.Fatalf("write hello: %v", err)
	}
	h, _, err := readConnFrame(t, conn)
	if err != nil {
		t.Fatalf("read welcome: %v", err)
	}
	if h.Type != FrameWelcome {
		t.Fatalf("handshake answered %v, want welcome", h.Type)
	}
	return conn
}

// readConnFrame reads one frame off conn with a test deadline.
func readConnFrame(t *testing.T, conn net.Conn) (Header, []byte, error) {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf []byte
	h, payload, err := readFrame(conn, &buf, DefaultMaxFrame)
	if err != nil {
		return h, nil, err
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return h, out, nil
}

// ringp returns a pointer to r (EffRing literals in test queries).
func ringp(r core.Ring) *core.Ring { return &r }

// goldenQueries is the check_ok.json batch: every op, allowed and
// denied accesses, a gate call with a ring switch, a return, an
// effective-ring chain.
func goldenQueries() []service.Query {
	return []service.Query{
		{Op: service.OpAccess, Ring: 4, Segment: "data", Wordno: 3, Kind: core.AccessRead},
		{Op: service.OpAccess, Ring: 5, Segment: "data", Kind: core.AccessRead},
		{Op: service.OpAccess, Ring: 7, Segment: "secret", Kind: core.AccessRead},
		{Op: service.OpCall, Ring: 4, Segment: "code", Wordno: 1},
		{Op: service.OpReturn, Ring: 2, Segment: "code", EffRing: ringp(3)},
		{Op: service.OpEffRing, Ring: 2, Chain: []service.ChainStep{{PR: true, Ring: 3}}},
	}
}
