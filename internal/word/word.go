// Package word models the 36-bit machine word of the simulated processor.
//
// The hardware described by Schroeder and Saltzer was built in the
// technology of the Honeywell 6000 series, a 36-bit architecture. All
// storage formats in the paper's Figure 3 (instruction words, indirect
// words, segment descriptor words) are 36-bit words; this package provides
// the word type and the field packing primitives those formats are built
// from.
//
// A Word is stored in the low 36 bits of a uint64. All operations mask
// their results to 36 bits. Bit 0 is the least significant bit; bit 35 is
// the most significant (sign) bit.
package word

import "fmt"

// Bits is the width of a machine word.
const Bits = 36

// Mask covers the 36 significant bits of a Word.
const Mask = (uint64(1) << Bits) - 1

// SignBit is the most significant bit of a Word, used by the signed
// arithmetic helpers.
const SignBit = uint64(1) << (Bits - 1)

// HalfBits is the width of a half word (an 18-bit address offset).
const HalfBits = 18

// HalfMask covers an 18-bit half word.
const HalfMask = (uint64(1) << HalfBits) - 1

// Word is one 36-bit machine word.
type Word uint64

// FromUint64 truncates v to 36 bits.
func FromUint64(v uint64) Word { return Word(v & Mask) }

// FromInt converts a signed integer to its 36-bit two's-complement
// representation.
func FromInt(v int64) Word { return Word(uint64(v) & Mask) }

// Uint64 returns the word as an unsigned 64-bit integer (high bits zero).
func (w Word) Uint64() uint64 { return uint64(w) & Mask }

// Int64 interprets the word as a 36-bit two's-complement integer.
func (w Word) Int64() int64 {
	v := uint64(w) & Mask
	if v&SignBit != 0 {
		return int64(v | ^Mask)
	}
	return int64(v)
}

// Field extracts width bits starting at bit lo (lo=0 is the least
// significant bit). It panics if the requested field does not fit in a
// word; field layouts are compile-time constants in this codebase, so a
// bad extent is a programming error, not a runtime condition.
func (w Word) Field(lo, width uint) uint64 {
	if lo+width > Bits {
		//ring:allow panic on compile-time-constant layout bug, never taken at run time
		panic(fmt.Sprintf("word: field [%d,%d) exceeds %d bits", lo, lo+width, Bits))
	}
	return (uint64(w) >> lo) & ((1 << width) - 1)
}

// Bit reports whether bit n is set.
func (w Word) Bit(n uint) bool { return w.Field(n, 1) != 0 }

// Deposit returns a copy of w with width bits starting at bit lo replaced
// by the low bits of val. Bits of val beyond width are ignored.
func (w Word) Deposit(lo, width uint, val uint64) Word {
	if lo+width > Bits {
		//ring:allow panic on compile-time-constant layout bug, never taken at run time
		panic(fmt.Sprintf("word: field [%d,%d) exceeds %d bits", lo, lo+width, Bits))
	}
	m := ((uint64(1) << width) - 1) << lo
	return Word((uint64(w) &^ m) | ((val << lo) & m))
}

// WithBit returns a copy of w with bit n set to b.
func (w Word) WithBit(n uint, b bool) Word {
	if b {
		return w.Deposit(n, 1, 1)
	}
	return w.Deposit(n, 1, 0)
}

// Lower returns the low 18-bit half word.
func (w Word) Lower() uint32 { return uint32(uint64(w) & HalfMask) }

// Upper returns the high 18-bit half word.
func (w Word) Upper() uint32 { return uint32((uint64(w) >> HalfBits) & HalfMask) }

// FromHalves assembles a word from two 18-bit halves.
func FromHalves(upper, lower uint32) Word {
	return Word(((uint64(upper) & HalfMask) << HalfBits) | (uint64(lower) & HalfMask))
}

// SignExtend18 interprets an 18-bit half word as a signed value.
func SignExtend18(v uint32) int32 {
	v &= uint32(HalfMask)
	if v&(1<<(HalfBits-1)) != 0 {
		return int32(v | ^uint32(HalfMask))
	}
	return int32(v)
}

// Add18 adds a signed displacement to an 18-bit word offset, wrapping
// modulo 2^18 the way the hardware's address adder does.
func Add18(base uint32, disp int32) uint32 {
	return uint32((int64(base) + int64(disp))) & uint32(HalfMask)
}

// Add returns w+v with 36-bit wraparound and reports carry out of bit 35.
func Add(w, v Word) (sum Word, carry bool) {
	s := (uint64(w) & Mask) + (uint64(v) & Mask)
	return Word(s & Mask), s > Mask
}

// Sub returns w-v with 36-bit wraparound and reports borrow.
func Sub(w, v Word) (diff Word, borrow bool) {
	d := (uint64(w) & Mask) - (uint64(v) & Mask)
	return Word(d & Mask), uint64(w)&Mask < uint64(v)&Mask
}

// Neg returns the two's-complement negation of w.
func Neg(w Word) Word { return Word((-uint64(w)) & Mask) }

// IsNegative reports whether the sign bit of w is set.
func (w Word) IsNegative() bool { return uint64(w)&SignBit != 0 }

// IsZero reports whether w is all zero bits.
func (w Word) IsZero() bool { return uint64(w)&Mask == 0 }

// String renders the word in the octal notation conventional for 36-bit
// machines: twelve octal digits.
func (w Word) String() string { return fmt.Sprintf("%012o", uint64(w)&Mask) }

// PackChars packs text into words, four 9-bit characters per word, high
// character first, NUL padded — the character convention of 36-bit
// Multics-era machines.
func PackChars(s string) []Word {
	var out []Word
	for i := 0; i < len(s); i += 4 {
		var w Word
		for j := 0; j < 4; j++ {
			var ch byte
			if i+j < len(s) {
				ch = s[i+j]
			}
			w = w.Deposit(uint(27-9*j), 9, uint64(ch))
		}
		out = append(out, w)
	}
	return out
}

// UnpackChars reverses PackChars, dropping NUL padding.
func UnpackChars(words []Word) string {
	out := make([]byte, 0, 4*len(words))
	for _, w := range words {
		for j := 0; j < 4; j++ {
			ch := byte(w.Field(uint(27-9*j), 9))
			if ch != 0 {
				out = append(out, ch)
			}
		}
	}
	return string(out)
}
