package word

import (
	"testing"
	"testing/quick"
)

func TestFromUint64Truncates(t *testing.T) {
	w := FromUint64(^uint64(0))
	if w.Uint64() != Mask {
		t.Fatalf("FromUint64(all ones) = %o, want %o", w.Uint64(), Mask)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, 1 << 34, -(1 << 34), (1 << 35) - 1, -(1 << 35)}
	for _, v := range cases {
		if got := FromInt(v).Int64(); got != v {
			t.Errorf("FromInt(%d).Int64() = %d", v, got)
		}
	}
}

func TestInt64Extremes(t *testing.T) {
	if got := FromInt(-(1 << 35)).Int64(); got != -(1 << 35) {
		t.Errorf("most negative: got %d", got)
	}
	// One past the most negative wraps to the most positive.
	if got := FromInt(-(1 << 35) - 1).Int64(); got != (1<<35)-1 {
		t.Errorf("wraparound: got %d, want %d", got, int64(1<<35)-1)
	}
}

func TestFieldDeposit(t *testing.T) {
	var w Word
	w = w.Deposit(0, 18, 0o777777)
	w = w.Deposit(18, 14, 0o12345)
	w = w.Deposit(32, 1, 1)
	w = w.Deposit(33, 3, 5)
	if got := w.Field(0, 18); got != 0o777777 {
		t.Errorf("field[0,18) = %o", got)
	}
	if got := w.Field(18, 14); got != 0o12345 {
		t.Errorf("field[18,14) = %o", got)
	}
	if got := w.Field(32, 1); got != 1 {
		t.Errorf("field[32,1) = %o", got)
	}
	if got := w.Field(33, 3); got != 5 {
		t.Errorf("field[33,3) = %o", got)
	}
}

func TestDepositMasksValue(t *testing.T) {
	w := Word(0).Deposit(3, 4, 0xFFFF)
	if got := w.Field(3, 4); got != 0xF {
		t.Errorf("field = %x, want F", got)
	}
	if got := w.Field(7, 8); got != 0 {
		t.Errorf("overflow leaked into adjacent bits: %x", got)
	}
	if got := w.Field(0, 3); got != 0 {
		t.Errorf("overflow leaked below: %x", got)
	}
}

func TestFieldPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Field beyond bit 35 did not panic")
		}
	}()
	Word(0).Field(30, 7)
}

func TestHalves(t *testing.T) {
	w := FromHalves(0o400000, 0o000777)
	if w.Upper() != 0o400000 {
		t.Errorf("Upper = %o", w.Upper())
	}
	if w.Lower() != 0o000777 {
		t.Errorf("Lower = %o", w.Lower())
	}
}

func TestSignExtend18(t *testing.T) {
	if got := SignExtend18(0o777777); got != -1 {
		t.Errorf("SignExtend18(777777) = %d, want -1", got)
	}
	if got := SignExtend18(0o377777); got != (1<<17)-1 {
		t.Errorf("SignExtend18(377777) = %d", got)
	}
	if got := SignExtend18(5); got != 5 {
		t.Errorf("SignExtend18(5) = %d", got)
	}
}

func TestAdd18Wraps(t *testing.T) {
	if got := Add18(0o777777, 1); got != 0 {
		t.Errorf("Add18 wrap = %o", got)
	}
	if got := Add18(0, -1); got != 0o777777 {
		t.Errorf("Add18 underflow = %o", got)
	}
	if got := Add18(100, 23); got != 123 {
		t.Errorf("Add18 = %d", got)
	}
}

func TestAddCarry(t *testing.T) {
	sum, carry := Add(FromUint64(Mask), 1)
	if !sum.IsZero() || !carry {
		t.Errorf("Add(max,1) = %v carry=%v", sum, carry)
	}
	sum, carry = Add(2, 3)
	if sum != 5 || carry {
		t.Errorf("Add(2,3) = %v carry=%v", sum, carry)
	}
}

func TestSubBorrow(t *testing.T) {
	d, borrow := Sub(0, 1)
	if d.Uint64() != Mask || !borrow {
		t.Errorf("Sub(0,1) = %v borrow=%v", d, borrow)
	}
	d, borrow = Sub(5, 3)
	if d != 2 || borrow {
		t.Errorf("Sub(5,3) = %v borrow=%v", d, borrow)
	}
}

func TestNeg(t *testing.T) {
	if Neg(FromInt(7)).Int64() != -7 {
		t.Error("Neg(7) != -7")
	}
	if !Neg(0).IsZero() {
		t.Error("Neg(0) != 0")
	}
}

func TestIndicatorsHelpers(t *testing.T) {
	if !FromInt(-1).IsNegative() {
		t.Error("-1 not negative")
	}
	if FromInt(1).IsNegative() {
		t.Error("1 negative")
	}
	if !Word(0).IsZero() {
		t.Error("0 not zero")
	}
}

func TestString(t *testing.T) {
	if got := FromUint64(0o123456701234).String(); got != "123456701234" {
		t.Errorf("String = %q", got)
	}
}

// Property: Deposit followed by Field is the identity on the deposited
// value (masked to the field width), for every field layout used by the
// storage formats.
func TestQuickDepositFieldRoundTrip(t *testing.T) {
	f := func(raw uint64, val uint64, loSeed, widthSeed uint8) bool {
		lo := uint(loSeed) % Bits
		width := uint(widthSeed)%(Bits-lo) + 1
		w := FromUint64(raw).Deposit(lo, width, val)
		return w.Field(lo, width) == val&((1<<width)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Deposit does not disturb bits outside the field.
func TestQuickDepositPreservesOtherBits(t *testing.T) {
	f := func(raw uint64, val uint64, loSeed, widthSeed uint8) bool {
		lo := uint(loSeed) % Bits
		width := uint(widthSeed)%(Bits-lo) + 1
		orig := FromUint64(raw)
		w := orig.Deposit(lo, width, val)
		m := ((uint64(1)<<width - 1) << lo)
		return (w.Uint64() &^ m) == (orig.Uint64() &^ m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: 36-bit two's-complement round trip.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		// Clamp to 36-bit signed range.
		v %= 1 << 35
		return FromInt(v).Int64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: halves round trip.
func TestQuickHalvesRoundTrip(t *testing.T) {
	f := func(u, l uint32) bool {
		u &= uint32(HalfMask)
		l &= uint32(HalfMask)
		w := FromHalves(u, l)
		return w.Upper() == u && w.Lower() == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub are inverses modulo 2^36.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		wa, wb := FromUint64(a), FromUint64(b)
		sum, _ := Add(wa, wb)
		diff, _ := Sub(sum, wb)
		return diff == wa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitAndWithBit(t *testing.T) {
	w := Word(0).WithBit(35, true).WithBit(0, true)
	if !w.Bit(35) || !w.Bit(0) || w.Bit(17) {
		t.Errorf("bits: %v", w)
	}
	w = w.WithBit(35, false)
	if w.Bit(35) {
		t.Error("bit 35 still set")
	}
}

func TestDepositPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Deposit beyond bit 35 did not panic")
		}
	}()
	Word(0).Deposit(30, 7, 1)
}

func TestPackCharsLayout(t *testing.T) {
	words := PackChars("ABCD")
	if len(words) != 1 {
		t.Fatalf("words: %d", len(words))
	}
	// 'A' in the high 9 bits, 'D' in the low 9.
	if got := words[0].Field(27, 9); got != 'A' {
		t.Errorf("high char %c", rune(got))
	}
	if got := words[0].Field(0, 9); got != 'D' {
		t.Errorf("low char %c", rune(got))
	}
}

func TestPackCharsPadding(t *testing.T) {
	words := PackChars("ab")
	if len(words) != 1 {
		t.Fatalf("words: %d", len(words))
	}
	if got := words[0].Field(9, 9); got != 0 {
		t.Error("padding not NUL")
	}
	if got := UnpackChars(words); got != "ab" {
		t.Errorf("round trip %q", got)
	}
	if UnpackChars(nil) != "" {
		t.Error("empty unpack")
	}
}

func TestQuickPackCharsRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// NULs are padding and cannot round-trip by design.
		clean := make([]byte, 0, len(raw))
		for _, b := range raw {
			if b != 0 {
				clean = append(clean, b)
			}
		}
		s := string(clean)
		return UnpackChars(PackChars(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
