package rings

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/service"
)

// Protection-decision re-exports: the vocabulary of the decision
// service (internal/service), usable in-process through Checker or
// over HTTP through the ringd daemon.
type (
	// Segment describes one segment of a protection image served by a
	// Checker (name, size, access flags, brackets, gate count).
	Segment = service.Segment
	// Query is one protection question: an access, call, return or
	// effective-ring computation.
	Query = service.Query
	// Decision is the service's answer to one Query.
	Decision = service.Decision
	// ChainStep is one contribution to effective-ring formation.
	ChainStep = service.ChainStep
	// Op names a protection query kind.
	Op = service.Op
	// AccessKind selects read, write or execute validation.
	AccessKind = core.AccessKind
)

// Query operations and access kinds.
const (
	OpAccess  = service.OpAccess
	OpCall    = service.OpCall
	OpReturn  = service.OpReturn
	OpEffRing = service.OpEffRing

	AccessRead    = core.AccessRead
	AccessWrite   = core.AccessWrite
	AccessExecute = core.AccessExecute
)

// Checker errors, re-exported from the decision service.
var (
	// ErrQueueFull reports that the bounded decision queue was at
	// capacity — shed or retry.
	ErrQueueFull = service.ErrQueueFull
	// ErrClosed reports a Check after Close.
	ErrClosed = service.ErrClosed
	// ErrBatchTooLarge reports a batch beyond the configured limit.
	ErrBatchTooLarge = service.ErrBatchTooLarge
)

// Checker answers protection queries against a descriptor image
// without running any simulated program: the paper's validation
// hardware packaged as a policy-decision point. It wraps the decision
// service with a single worker, so decisions are strictly ordered with
// respect to mutations made through the same Checker.
//
//	chk, err := rings.NewChecker([]rings.Segment{
//	    {Name: "data", Size: 64, Read: true, Write: true,
//	     Brackets: rings.Brackets{R1: 2, R2: 4, R3: 4}},
//	})
//	d, err := chk.CheckAccess(4, "data", 3, rings.AccessRead)
//	// d.Allowed == true
//
// For concurrent serving, run the ringd daemon instead.
type Checker struct {
	store *service.Store
	svc   *service.Service
}

// CheckerConfig sizes a Checker built with NewCheckerWith. The zero
// value matches NewChecker: one worker, default queue and shard
// counts.
type CheckerConfig struct {
	// Workers is the decision worker-pool size; default 1. Workers
	// read immutable RCU descriptor snapshots pinned per batch, so
	// with more than one worker decisions never lock against
	// mutations; ordering between batches and mutations is up to the
	// scheduler (each Decision reports the publication epoch of the
	// shard snapshot it consulted).
	Workers int
	// QueueDepth bounds the batch queue; a full queue makes Check fail
	// fast with service.ErrQueueFull.
	QueueDepth int
	// BatchLimit caps the number of queries per Check call.
	BatchLimit int
	// Shards is the descriptor-store shard count (a power of two);
	// default 8.
	Shards int
}

// NewChecker builds a descriptor image from segs (numbered in order
// from 0) and starts a single-worker decision service over it. Close
// the Checker when done.
func NewChecker(segs []Segment) (*Checker, error) {
	return NewCheckerWith(CheckerConfig{}, segs)
}

// NewCheckerWith is NewChecker with explicit sizing — worker pool,
// queue and descriptor-store shards. cmd/ringload uses it to drive the
// decision path in-process at configurable parallelism.
func NewCheckerWith(cfg CheckerConfig, segs []Segment) (*Checker, error) {
	st, err := service.NewStore(service.StoreConfig{Shards: cfg.Shards}, segs)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	svc, err := service.New(st, service.Config{
		Workers:    workers,
		QueueDepth: cfg.QueueDepth,
		BatchLimit: cfg.BatchLimit,
	})
	if err != nil {
		return nil, err
	}
	return &Checker{store: st, svc: svc}, nil
}

// Close stops the decision worker.
func (c *Checker) Close() { c.svc.Close() }

// Check answers a batch of queries.
func (c *Checker) Check(queries ...Query) ([]Decision, error) {
	return c.svc.Submit(context.Background(), queries)
}

// CheckInto answers a batch of queries into a caller-supplied decision
// slice (dst[i] answers queries[i]; dst must hold at least
// len(queries) elements). With the service's descriptor pool warm this
// round trip performs no heap allocation — the form load generators
// and embedders on a hot path should use.
//
//ring:hotpath
func (c *Checker) CheckInto(queries []Query, dst []Decision) error {
	return c.svc.SubmitInto(context.Background(), queries, dst)
}

// Shards returns the descriptor-store shard count.
func (c *Checker) Shards() int { return c.store.Shards() }

// checkOne submits a single query.
func (c *Checker) checkOne(q Query) (Decision, error) {
	ds, err := c.svc.Submit(context.Background(), []Query{q})
	if err != nil {
		return Decision{}, err
	}
	return ds[0], nil
}

// CheckAccess validates one reference: may ring read, write or execute
// word wordno of the named segment?
func (c *Checker) CheckAccess(ring Ring, segment string, wordno uint32, kind AccessKind) (Decision, error) {
	return c.checkOne(Query{Op: OpAccess, Ring: ring, Segment: segment, Wordno: wordno, Kind: kind})
}

// CheckCall evaluates the CALL decision of Figure 8 for a transfer from
// ring to the named segment at offset: gate list, bracket placement,
// and the resulting ring switch (Decision.Outcome, Decision.NewRing).
func (c *Checker) CheckCall(ring Ring, segment string, offset uint32) (Decision, error) {
	return c.checkOne(Query{Op: OpCall, Ring: ring, Segment: segment, Wordno: offset})
}

// CheckReturn evaluates the RETURN decision of Figure 9 for a return
// from ring to effRing through the named segment at offset.
func (c *Checker) CheckReturn(ring, effRing Ring, segment string, offset uint32) (Decision, error) {
	return c.checkOne(Query{Op: OpReturn, Ring: ring, Segment: segment, Wordno: offset, EffRing: &effRing})
}

// EffectiveRing folds an address chain per Figure 5, starting from
// ring: pointer-register steps raise the effective ring directly,
// indirect steps also validate the indirect-word read and fold in the
// container's R1. The result is Decision.NewRing.
func (c *Checker) EffectiveRing(ring Ring, chain ...ChainStep) (Decision, error) {
	return c.checkOne(Query{Op: OpEffRing, Ring: ring, Chain: chain})
}

// Segno resolves a segment name.
func (c *Checker) Segno(name string) (uint32, bool) { return c.store.Segno(name) }

// SetBrackets replaces the named segment's access flags, brackets and
// gate count — ring-0 supervisor functionality, routed through the
// coherent descriptor-store path.
func (c *Checker) SetBrackets(segment string, read, write, execute bool, b Brackets, gates uint32) error {
	segno, ok := c.store.Segno(segment)
	if !ok {
		return unknownSegment(segment)
	}
	return c.store.SetBrackets(segno, read, write, execute, b, gates)
}

// Revoke clears the named segment's present flag: every subsequent
// reference decides as a missing-segment fault until Restore.
func (c *Checker) Revoke(segment string) error {
	segno, ok := c.store.Segno(segment)
	if !ok {
		return unknownSegment(segment)
	}
	return c.store.Revoke(segno)
}

// Restore re-sets the present flag of a revoked segment.
func (c *Checker) Restore(segment string) error {
	segno, ok := c.store.Segno(segment)
	if !ok {
		return unknownSegment(segment)
	}
	return c.store.Restore(segno)
}

// Metrics returns the decision counters (decisions, faults by kind,
// snapshot-read and latency histograms).
func (c *Checker) Metrics() service.Snapshot { return c.svc.Snapshot() }

func unknownSegment(name string) error {
	return fmt.Errorf("rings: unknown segment %q", name)
}
