package rings_test

import (
	"testing"

	"repro/rings"
)

func checkerImage() []rings.Segment {
	return []rings.Segment{
		{Name: "data", Size: 64, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 64, Read: true, Execute: true,
			Brackets: rings.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
		{Name: "secret", Size: 16, Read: true,
			Brackets: rings.Brackets{R1: 0, R2: 1, R3: 1}},
	}
}

func TestCheckerAccess(t *testing.T) {
	chk, err := rings.NewChecker(checkerImage())
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	defer chk.Close()

	d, err := chk.CheckAccess(4, "data", 3, rings.AccessRead)
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if !d.Allowed {
		t.Errorf("ring-4 read of data: %+v", d)
	}

	d, err = chk.CheckAccess(5, "secret", 0, rings.AccessRead)
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if d.Allowed || d.Violation != "outside read bracket" {
		t.Errorf("ring-5 read of secret: %+v", d)
	}

	d, err = chk.CheckAccess(3, "code", 0, rings.AccessWrite)
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if d.Allowed || d.Violation != "write flag off" {
		t.Errorf("write to code: %+v", d)
	}
}

func TestCheckerCallReturnEffRing(t *testing.T) {
	chk, err := rings.NewChecker(checkerImage())
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	defer chk.Close()

	// Ring 4 is above code's execute bracket top (R2=3); word 1 is a
	// gate, so the call is a legal downward call switching to R2.
	d, err := chk.CheckCall(4, "code", 1)
	if err != nil {
		t.Fatalf("CheckCall: %v", err)
	}
	if !d.Allowed || d.Outcome != "downward call" || d.NewRing != 3 {
		t.Errorf("gated call: %+v", d)
	}

	// Word 5 is past the gate list.
	d, err = chk.CheckCall(4, "code", 5)
	if err != nil {
		t.Fatalf("CheckCall: %v", err)
	}
	if d.Allowed || d.Violation != "transfer not directed at a gate location" {
		t.Errorf("non-gate call: %+v", d)
	}

	// Ring 0 calling up into code (R1=1) traps to the new ring.
	d, err = chk.CheckCall(0, "code", 0)
	if err != nil {
		t.Fatalf("CheckCall: %v", err)
	}
	if !d.Allowed || d.Outcome != "upward call (trap)" || !d.Trapped || d.NewRing != 1 {
		t.Errorf("upward call: %+v", d)
	}

	// Return from ring 2 to effective ring 3 within code's brackets.
	d, err = chk.CheckReturn(2, 3, "code", 0)
	if err != nil {
		t.Fatalf("CheckReturn: %v", err)
	}
	if !d.Allowed || d.Outcome != "upward return" || d.NewRing != 3 {
		t.Errorf("upward return: %+v", d)
	}

	// An effective-ring chain through a pointer register in ring 6.
	d, err = chk.EffectiveRing(1, rings.ChainStep{Ring: 6})
	if err != nil {
		t.Fatalf("EffectiveRing: %v", err)
	}
	if !d.Allowed || d.NewRing != 6 {
		t.Errorf("effective ring: %+v", d)
	}
}

func TestCheckerMutation(t *testing.T) {
	chk, err := rings.NewChecker(checkerImage())
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	defer chk.Close()

	// Narrow data's write bracket below ring 3, then put it back.
	if err := chk.SetBrackets("data", true, true, false, rings.Brackets{R1: 0, R2: 1, R3: 1}, 0); err != nil {
		t.Fatalf("SetBrackets: %v", err)
	}
	d, err := chk.CheckAccess(3, "data", 0, rings.AccessWrite)
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if d.Allowed || d.Violation != "outside write bracket" {
		t.Errorf("after narrowing: %+v", d)
	}
	if err := chk.SetBrackets("data", true, true, false, rings.Brackets{R1: 2, R2: 4, R3: 4}, 0); err != nil {
		t.Fatalf("SetBrackets: %v", err)
	}

	// Revoke makes every reference a missing-segment fault; Restore
	// undoes it.
	if err := chk.Revoke("code"); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	d, err = chk.CheckAccess(2, "code", 0, rings.AccessExecute)
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if d.Allowed || d.Violation != "missing segment" {
		t.Errorf("after revoke: %+v", d)
	}
	if err := chk.Restore("code"); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	d, err = chk.CheckAccess(2, "code", 0, rings.AccessExecute)
	if err != nil {
		t.Fatalf("CheckAccess: %v", err)
	}
	if !d.Allowed {
		t.Errorf("after restore: %+v", d)
	}

	// Unknown segments are reported by name.
	for _, call := range []error{
		chk.Revoke("absent"),
		chk.Restore("absent"),
		chk.SetBrackets("absent", true, false, false, rings.Brackets{}, 0),
	} {
		if call == nil {
			t.Error("mutation of unknown segment: want error")
		}
	}
	if _, ok := chk.Segno("data"); !ok {
		t.Error("Segno(data): not found")
	}
	if _, ok := chk.Segno("absent"); ok {
		t.Error("Segno(absent): unexpectedly found")
	}
}

func TestCheckerWithConfigAndCheckInto(t *testing.T) {
	chk, err := rings.NewCheckerWith(rings.CheckerConfig{
		Workers: 2, QueueDepth: 8, Shards: 4,
	}, checkerImage())
	if err != nil {
		t.Fatalf("NewCheckerWith: %v", err)
	}
	defer chk.Close()
	if got := chk.Shards(); got != 4 {
		t.Errorf("Shards() = %d, want 4", got)
	}

	queries := []rings.Query{
		{Op: rings.OpAccess, Ring: 4, Segment: "data", Kind: rings.AccessRead},
		{Op: rings.OpAccess, Ring: 7, Segment: "secret", Kind: rings.AccessRead},
	}
	dst := make([]rings.Decision, len(queries))
	for i := 0; i < 3; i++ { // reuse the same destination across calls
		if err := chk.CheckInto(queries, dst); err != nil {
			t.Fatalf("CheckInto: %v", err)
		}
		if !dst[0].Allowed || dst[1].Allowed {
			t.Errorf("round %d: decisions %+v", i, dst)
		}
	}
	if err := chk.CheckInto(queries, dst[:1]); err == nil {
		t.Error("CheckInto with short dst: want error")
	}

	if _, err := rings.NewCheckerWith(rings.CheckerConfig{Shards: 5}, checkerImage()); err == nil {
		t.Error("NewCheckerWith(Shards=5): want error")
	}
}

func TestCheckerBatchAndMetrics(t *testing.T) {
	chk, err := rings.NewChecker(checkerImage())
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	defer chk.Close()

	ds, err := chk.Check(
		rings.Query{Op: rings.OpAccess, Ring: 4, Segment: "data", Kind: rings.AccessRead},
		rings.Query{Op: rings.OpAccess, Ring: 7, Segment: "secret", Kind: rings.AccessRead},
		rings.Query{Op: rings.OpCall, Ring: 4, Segment: "code", Wordno: 0},
	)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d decisions", len(ds))
	}
	if !ds[0].Allowed || ds[1].Allowed || !ds[2].Allowed {
		t.Errorf("decisions: %+v", ds)
	}

	m := chk.Metrics()
	if m.Queries != 3 || m.Batches != 1 {
		t.Errorf("metrics: queries %d batches %d", m.Queries, m.Batches)
	}
	if m.Faults["outside_read_bracket"] != 1 {
		t.Errorf("faults: %+v", m.Faults)
	}
}
