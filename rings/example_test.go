package rings_test

import (
	"fmt"
	"log"

	"repro/rings"
)

// The canonical session: a ring-4 program calling ring-0 supervisor
// gates through ordinary CALL instructions.
func ExampleNewSystem() {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice"}, rings.StdMacros+`
        .seg    main
        .bracket 4,4,4          ; this procedure executes in ring 4
        lia     42
        callg   sysgates$putnum ; downward call into ring 0, in hardware
        lia     0
        callg   sysgates$exit
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Console)
	fmt.Println("exit:", res.ExitCode)
	// Output:
	// 42
	// exit: 0
}

// The debugging-ring policy: catch an untested program's addressing
// errors, report them, and keep going.
func ExampleSystem_OnViolation() {
	sys, err := rings.NewSystem(rings.SystemConfig{
		Extra: []rings.SegmentDef{{
			Name: "precious", Size: 4, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 4, R2: 5, R3: 5}, // ring 5 may not write
		}},
	}, rings.StdMacros+`
        .seg    untested
        .bracket 5,5,5
        lia     1
        sta     *wild           ; addressing bug
        lia     0
        callg   sysgates$exit
wild:   .its    5, precious$base
`)
	if err != nil {
		log.Fatal(err)
	}
	sys.OnViolation(func(t *rings.Trap) bool {
		fmt.Println("caught:", t.Violation.Kind)
		return false // skip the faulting instruction and continue
	})
	res, err := sys.Run(5, "untested")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("finished:", res.Exited)
	// Output:
	// caught: outside write bracket
	// finished: true
}

// The same object code on the 645-style software-ring machine: every
// ring crossing becomes a supervisor intervention.
func ExampleBaseline() {
	m, err := rings.Baseline(rings.SystemConfig{}, rings.StdMacros+`
        .seg    main
        .bracket 4,4,4
        callg   svc$entry
        hlt

        .seg    svc
        .bracket 1,1,5
        .gate   entry
entry:  leafenter
        lia     7
        leafexit
`)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Start(4, "main", 0); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:", m.CPU.A.Int64())
	fmt.Println("software crossings:", m.Crossings)
	// Output:
	// result: 7
	// software crossings: 2
}
