package rings

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/wire"
)

// This file is the client half of the distributed decision-lease
// protocol: the network analogue of the paper's per-processor SDW
// associative memory. A RemoteChecker dialed with a CacheSize holds a
// bounded map from query tuples to decisions, each lease tagged with
// the decision's shard publication epoch and a wall-clock TTL; the
// wire session's subscription stream delivers the supervisor's
// shootdowns, and a shootdown naming shard epoch E retires every lease
// on that shard tagged with an older epoch.
//
// # Staleness argument
//
// A cached decision is served only while three conditions hold:
//
//  1. its epoch is at or beyond the shard's shootdown floor — no
//     acknowledged shootdown names it;
//  2. its TTL has not elapsed — a stalled or lagging stream bounds
//     staleness by the TTL instead of forever;
//  3. the subscription is live — a dead session (GoAway, disconnect,
//     lease-expire) drops the whole cache and every lookup misses
//     until a fresh session resubscribes and starts from empty.
//
// Every served decision therefore remains explainable at some store
// state within its recorded epoch interval, and no decision is served
// after the client has acknowledged a shootdown naming its epoch: the
// floor store in the shootdown handler happens before the handler
// returns, and every subsequent lookup reads the floor.

// maxLeaseChain bounds the effective-ring chain length a lease key can
// represent; longer chains bypass the cache (they are rare and their
// decisions span shards anyway).
const maxLeaseChain = 4

// leaseKey is a fixed-size comparable image of one Query: cache
// lookups build it on the stack and index the lease map directly, so
// the hit path neither hashes by hand nor allocates, and distinct
// queries can never collide. The op travels as a one-byte code and
// fields the decision procedure ignores for an op are canonicalized to
// zero — both shrink the hashed bytes, which is most of a hit's cost.
type leaseKey struct {
	op          uint8 // 1 access, 2 call, 3 return, 4 effring
	ring        Ring
	kind        uint8 // validated AccessKind; meaningful for access only
	effRing     Ring
	hasEff      bool
	sameSegment bool
	chainLen    uint8
	segno       uint32
	wordno      uint32
	chain       [maxLeaseChain]ChainStep
	segment     string
}

// leaseKeyOf builds q's cache key. It reports false for queries the
// cache does not serve: unknown ops, out-of-range access kinds (a
// narrowed kind must never collide with a valid one), and
// effective-ring chains longer than maxLeaseChain.
//
//ring:hotpath
func leaseKeyOf(q *Query) (leaseKey, bool) {
	k := leaseKey{
		ring:    q.Ring,
		segment: q.Segment,
		segno:   q.Segno,
		wordno:  q.Wordno,
	}
	switch q.Op {
	case OpAccess:
		// Only access reads the kind; call/return/effring ignore it, so
		// leaving it zero there folds equivalent queries into one lease.
		if q.Kind != AccessRead && q.Kind != AccessWrite && q.Kind != AccessExecute {
			return k, false
		}
		k.op, k.kind = 1, uint8(q.Kind)
	case OpCall:
		k.op = 2
		k.sameSegment = q.SameSegment
	case OpReturn:
		k.op = 3
	default:
		if q.Op != OpEffRing {
			return k, false
		}
		k.op = 4
	}
	if q.EffRing != nil {
		k.hasEff = true
		k.effRing = *q.EffRing
	}
	if len(q.Chain) > maxLeaseChain {
		return k, false
	}
	k.chainLen = uint8(len(q.Chain))
	for i := range q.Chain {
		k.chain[i] = q.Chain[i]
	}
	return k, true
}

// lease is one cached decision: the answer, the (even) shard
// publication epoch it was decided at, and its wall-clock expiry.
type lease struct {
	dec     Decision
	epoch   uint64
	expires int64 // UnixNano
}

// flight is one in-flight miss being fetched by a leader call;
// followers for the same key wait on done instead of duplicating the
// remote fetch.
type flight struct {
	done chan struct{}
	dec  Decision
	ok   bool
}

// CacheStats is a lease cache's counters, for /metrics-style
// reporting and the T17 experiment.
type CacheStats struct {
	// Hits and Misses count individual queries served from the cache
	// vs fetched remotely.
	Hits, Misses uint64
	// Shootdowns counts invalidation pushes received; Expires counts
	// lease-expire pushes; Flushes counts whole-cache drops (lapse,
	// reconnect).
	Shootdowns, Expires, Flushes uint64
	// Size is the current lease count.
	Size int
}

// leaseCache is the bounded decision-lease cache behind a cached
// RemoteChecker.
type leaseCache struct {
	cap int
	ttl time.Duration

	mu      sync.RWMutex
	entries map[leaseKey]*lease //ring:guarded mu (pointer values: put replaces, never mutates in place)

	flightMu sync.Mutex
	flights  map[leaseKey]*flight //ring:guarded flightMu

	// floors[i] is shard i's shootdown floor: the highest invalidation
	// epoch acknowledged for that shard. Sized to the store's shard
	// bound so the handler can never race a sizing step.
	floors [service.MaxShards]atomic.Uint64

	// lapsed is set the instant the subscription stream dies (GoAway,
	// disconnect, lease-expire): every lookup fails closed to a miss
	// and nothing is inserted until a fresh session resubscribes.
	lapsed atomic.Bool
	// gen counts subscription generations; it bumps on every lapse and
	// revive, and an insert whose fetch began under an older generation
	// is refused — a decision fetched over a dead session must never
	// seed the revived cache (the mutations it missed were never
	// announced to the new subscription).
	gen atomic.Uint64

	hits       atomic.Uint64
	misses     atomic.Uint64
	shootdowns atomic.Uint64
	expires    atomic.Uint64
	flushes    atomic.Uint64
}

func newLeaseCache(capacity int, ttl time.Duration) *leaseCache {
	return &leaseCache{
		cap:     capacity,
		ttl:     ttl,
		entries: make(map[leaseKey]*lease, capacity),
		flights: make(map[leaseKey]*flight),
	}
}

// serveHits answers every lease-resident query of the batch in one
// read-locked pass, filling dst[i] for each hit and appending a
// missRec for everything else. The epoch-floor and TTL checks run
// under the read lock on every hit, so a lookup beginning after a
// shootdown (or lapse) is acknowledged can never return the lease it
// retired; taking the lock once per batch instead of once per query is
// what keeps the hit path ahead of the wire on a saturated core.
//
//ring:hotpath
func (lc *leaseCache) serveHits(queries []Query, dst []Decision, now int64, live bool, misses []missRec) []missRec {
	var nhits uint64
	lc.mu.RLock()
	serveLive := live && !lc.lapsed.Load()
	for i := range queries {
		k, cacheable := leaseKeyOf(&queries[i])
		if serveLive && cacheable {
			if l, ok := lc.entries[k]; ok &&
				now < l.expires &&
				l.epoch >= lc.floors[l.dec.Shard].Load() {
				dst[i] = l.dec
				nhits++
				continue
			}
		}
		//ring:allow miss path: appends only for queries the lease map cannot serve
		misses = append(misses, missRec{idx: i, key: k, cacheable: live && cacheable})
	}
	lc.mu.RUnlock()
	if nhits > 0 {
		lc.hits.Add(nhits)
	}
	return misses
}

// put records a fetched decision as a lease. Decisions that answered
// an error, or that no single shard explains (Shard < 0), are not
// cacheable; a full cache evicts an arbitrary victim (the map's first
// iterated key — cheap, and correctness never depends on which lease
// is dropped).
func (lc *leaseCache) put(k leaseKey, dec Decision, now int64, gen uint64) {
	if dec.Err != "" || dec.Shard < 0 || dec.Shard >= service.MaxShards {
		return
	}
	if lc.lapsed.Load() || lc.gen.Load() != gen {
		return
	}
	lc.mu.Lock()
	if _, exists := lc.entries[k]; !exists && len(lc.entries) >= lc.cap {
		for victim := range lc.entries {
			delete(lc.entries, victim)
			break
		}
	}
	lc.entries[k] = &lease{dec: dec, epoch: dec.VersionLo, expires: now + int64(lc.ttl)}
	lc.mu.Unlock()
}

// shootdown is the wire session's OnShootdown handler: raise the
// shard's floor to the named epoch. Floors only rise (epochs are
// monotonic per shard, but a reconnected session could replay an older
// one), and the store-before-return ordering is what makes the
// no-stale-after-acknowledge property hold.
func (lc *leaseCache) shootdown(sd wire.Shootdown) {
	if sd.Shard < service.MaxShards {
		f := &lc.floors[sd.Shard]
		for {
			cur := f.Load()
			if sd.Epoch <= cur || f.CompareAndSwap(cur, sd.Epoch) {
				break
			}
		}
	}
	// Counter last: anyone who observes the count knows the floor it
	// announced is already in place.
	lc.shootdowns.Add(1)
}

// lapse fails the cache closed: the subscription stream is gone, so
// every lease is unverifiable. Lookups miss and inserts are refused
// until a reconnect resubscribes and calls revive.
func (lc *leaseCache) lapse() {
	lc.lapsed.Store(true)
	lc.gen.Add(1)
	lc.flush()
}

// flush drops every lease.
func (lc *leaseCache) flush() {
	lc.mu.Lock()
	lc.entries = make(map[leaseKey]*lease, lc.cap)
	lc.mu.Unlock()
	lc.flushes.Add(1)
}

// revive re-arms the cache after a fresh session has subscribed: the
// cache is empty (flush precedes it) and the new subscription will
// announce every mutation from here on.
func (lc *leaseCache) revive() {
	lc.flush()
	lc.gen.Add(1)
	lc.lapsed.Store(false)
}

// stats snapshots the counters.
func (lc *leaseCache) stats() CacheStats {
	lc.mu.RLock()
	size := len(lc.entries)
	lc.mu.RUnlock()
	return CacheStats{
		Hits:       lc.hits.Load(),
		Misses:     lc.misses.Load(),
		Shootdowns: lc.shootdowns.Load(),
		Expires:    lc.expires.Load(),
		Flushes:    lc.flushes.Load(),
		Size:       size,
	}
}

// missRec tracks one query the hit pass could not serve.
type missRec struct {
	idx       int
	key       leaseKey
	cacheable bool
	fl        *flight
	owned     bool
}

// cachedCheckInto is CheckInto with the lease cache in front of the
// wire session: a read-locked hit pass, then single-flight remote
// fetches for the misses.
func (rc *RemoteChecker) cachedCheckInto(queries []Query, dst []Decision) error {
	lc := rc.cache
	rc.ensureLive()
	live := !lc.lapsed.Load()
	gen := lc.gen.Load()
	now := time.Now().UnixNano()

	misses := lc.serveHits(queries, dst, now, live, nil)
	if len(misses) == 0 {
		return nil
	}
	lc.misses.Add(uint64(len(misses)))

	// Single-flight: the first call to miss a key leads the fetch;
	// concurrent calls missing the same key follow its flight instead
	// of duplicating the remote round trip. In-batch duplicates are
	// safe: every owned flight completes before any wait below.
	lc.flightMu.Lock()
	for m := range misses {
		if !misses[m].cacheable {
			misses[m].owned = true
			continue
		}
		if fl, ok := lc.flights[misses[m].key]; ok {
			misses[m].fl = fl
			continue
		}
		fl := &flight{done: make(chan struct{})}
		lc.flights[misses[m].key] = fl
		misses[m].fl, misses[m].owned = fl, true
	}
	lc.flightMu.Unlock()

	var subQ []Query
	for m := range misses {
		if misses[m].owned {
			subQ = append(subQ, queries[misses[m].idx])
		}
	}
	var ferr error
	var subD []Decision
	if len(subQ) > 0 {
		subD = make([]Decision, len(subQ))
		ferr = rc.fetchRemote(subQ, subD)
	}
	j := 0
	lc.flightMu.Lock()
	for m := range misses {
		if !misses[m].owned {
			continue
		}
		if ferr == nil {
			dst[misses[m].idx] = subD[j]
			if fl := misses[m].fl; fl != nil {
				fl.dec, fl.ok = subD[j], true
			}
		}
		j++
		if fl := misses[m].fl; fl != nil {
			delete(lc.flights, misses[m].key)
			close(fl.done)
		}
	}
	lc.flightMu.Unlock()
	if ferr == nil {
		j = 0
		for m := range misses {
			if misses[m].owned {
				if misses[m].cacheable {
					lc.put(misses[m].key, subD[j], now, gen)
				}
				j++
			}
		}
	}

	// Followers: collect leases fetched by other calls; a failed
	// leader falls back to a direct fetch of the leftovers.
	var retry []missRec
	for m := range misses {
		if misses[m].owned {
			continue
		}
		<-misses[m].fl.done
		if misses[m].fl.ok {
			dst[misses[m].idx] = misses[m].fl.dec
			continue
		}
		retry = append(retry, misses[m])
	}
	if ferr != nil {
		return ferr
	}
	if len(retry) > 0 {
		rq := make([]Query, len(retry))
		rd := make([]Decision, len(retry))
		for i, m := range retry {
			rq[i] = queries[m.idx]
		}
		if err := rc.fetchRemote(rq, rd); err != nil {
			return err
		}
		for i, m := range retry {
			dst[m.idx] = rd[i]
			if m.cacheable {
				lc.put(m.key, rd[i], now, gen)
			}
		}
	}
	return nil
}

// fetchRemote sends one miss batch down the current wire session.
func (rc *RemoteChecker) fetchRemote(queries []Query, dst []Decision) error {
	wc := rc.wcp.Load()
	if wc == nil {
		return ErrClosed
	}
	return mapWireErr(wc.CheckInto(queries, dst))
}

// redialInterval paces reconnect attempts while the daemon is
// unreachable, so every batch does not pay a dial timeout.
const redialInterval = 50 * time.Millisecond

// ensureLive redials and resubscribes after the subscription stream
// lapsed. On success the cache is flushed (leases from the dead
// session are unverifiable) and re-armed; on failure the cache stays
// lapsed — every query goes remote — and the next call past the
// backoff retries.
func (rc *RemoteChecker) ensureLive() {
	lc := rc.cache
	if !lc.lapsed.Load() || rc.closed.Load() {
		return
	}
	now := time.Now().UnixNano()
	last := rc.lastRedial.Load()
	if now-last < int64(redialInterval) || !rc.lastRedial.CompareAndSwap(last, now) {
		return
	}
	rc.redialMu.Lock()
	defer rc.redialMu.Unlock()
	if !lc.lapsed.Load() || rc.closed.Load() {
		return
	}
	wc, err := wire.Dial(rc.wireAddr, rc.wcfg)
	if err != nil {
		return
	}
	if _, err := wc.Subscribe(); err != nil {
		wc.Close()
		return
	}
	old := rc.wcp.Swap(wc)
	lc.revive()
	if old != nil {
		old.Close()
	}
}

// CacheStats returns the lease cache's counters; the zero value when
// the checker was dialed without a cache.
func (rc *RemoteChecker) CacheStats() CacheStats {
	if rc.cache == nil {
		return CacheStats{}
	}
	return rc.cache.stats()
}
