package rings

import (
	"testing"
	"time"
)

// benchBatch builds a cacheable batch and a cache already holding
// leases for all of it, the steady state the T17 experiment measures.
func benchBatch(n int) ([]Query, []Decision, *leaseCache) {
	lc := newLeaseCache(4*n, time.Hour)
	queries := make([]Query, n)
	dst := make([]Decision, n)
	gen := lc.gen.Load()
	now := time.Now().UnixNano()
	for i := range queries {
		queries[i] = Query{Op: OpAccess, Ring: 4, Segno: uint32(i % 6), Wordno: uint32(i), Kind: AccessRead}
		k, _ := leaseKeyOf(&queries[i])
		lc.put(k, Decision{Allowed: true, Shard: int(queries[i].Segno % 8), VersionLo: 2, VersionHi: 2}, now, gen)
	}
	return queries, dst, lc
}

func BenchmarkLeaseServeHits(b *testing.B) {
	queries, dst, lc := benchBatch(64)
	now := time.Now().UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := lc.serveHits(queries, dst, now, true, nil); len(m) != 0 {
			b.Fatalf("%d misses", len(m))
		}
	}
}

func BenchmarkLeaseKeyOf(b *testing.B) {
	queries, _, _ := benchBatch(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range queries {
			k, ok := leaseKeyOf(&queries[j])
			if !ok || k.segno > 8 {
				b.Fatal("bad key")
			}
		}
	}
}
