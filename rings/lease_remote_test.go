package rings_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/tenant"
	"repro/internal/wire"
	"repro/rings"
)

// This file proves the distributed decision-lease cache (DialRemote
// with CacheSize) against the repo's strongest correctness instrument:
// the epoch-interval oracle. Every decision a cached client serves —
// lease hit or remote fetch — carries a shard epoch interval, and the
// differential test below replays each one against a single-threaded
// oracle at every store state inside that interval while mutators race
// the clients. A cached answer that outlived a shootdown, a key
// collision, or a lease surviving a reconnect would all surface as a
// decision no oracle state explains.

// wideData and narrowData are the two bracket states the mutation
// script alternates "data" (segno 0, shard 0) between. Narrow pushes
// the access brackets below the probe rings, flipping allow to deny.
var (
	wideData   = rings.Brackets{R1: 2, R2: 4, R3: 4}
	narrowData = rings.Brackets{R1: 0, R2: 1, R3: 1}
)

// setData applies step k of the script: odd steps narrow, even steps
// restore the image's wide brackets.
func setData(st interface {
	SetBrackets(uint32, bool, bool, bool, rings.Brackets, uint32) error
}, k int) error {
	b := wideData
	if k%2 == 0 {
		b = narrowData
	}
	return st.SetBrackets(0, true, true, false, b, 0)
}

// leaseProbes is the differential probe batch: every query consults
// only "data" (segno 0), so every decision is explainable by shard 0's
// epoch alone — exactly the single-shard leases the cache serves.
func leaseProbes() []rings.Query {
	eff := rings.Ring(1)
	return []rings.Query{
		{Op: rings.OpAccess, Ring: 1, Segment: "data", Wordno: 0, Kind: rings.AccessRead},
		{Op: rings.OpAccess, Ring: 2, Segment: "data", Wordno: 1, Kind: rings.AccessRead},
		{Op: rings.OpAccess, Ring: 4, Segment: "data", Wordno: 2, Kind: rings.AccessRead},
		{Op: rings.OpAccess, Ring: 5, Segment: "data", Wordno: 3, Kind: rings.AccessRead},
		{Op: rings.OpAccess, Ring: 1, Segment: "data", Wordno: 4, Kind: rings.AccessWrite},
		{Op: rings.OpAccess, Ring: 3, Segment: "data", Wordno: 5, Kind: rings.AccessWrite},
		{Op: rings.OpAccess, Ring: 2, Segment: "data", Wordno: 6, Kind: rings.AccessExecute},
		{Op: rings.OpCall, Ring: 3, Segment: "data", Wordno: 0},
		{Op: rings.OpCall, Ring: 5, Segment: "data", Wordno: 0},
		{Op: rings.OpReturn, Ring: 4, Segment: "data", EffRing: &eff},
		{Op: rings.OpEffRing, Ring: 2, Chain: []rings.ChainStep{{Ring: 5, Segno: 0}}},
		{Op: rings.OpEffRing, Ring: 6, Chain: []rings.ChainStep{{Ring: 1, Segno: 0}, {Ring: 3, Segno: 0}}},
	}
}

// stripDecision removes the fields a replay cannot reproduce (epoch
// interval, worker index) so decisions compare by substance.
func stripDecision(d rings.Decision) rings.Decision {
	d.VersionLo, d.VersionHi, d.Worker = 0, 0, 0
	return d
}

// buildLeaseOracle replays the mutation script single-threaded:
// oracle[k][p] is probe p's stripped decision after the first k
// mutations.
func buildLeaseOracle(t *testing.T, probes []rings.Query, mutations int) [][]rings.Decision {
	t.Helper()
	chk, err := rings.NewChecker(checkerImage())
	if err != nil {
		t.Fatalf("oracle checker: %v", err)
	}
	defer chk.Close()
	oracle := make([][]rings.Decision, mutations+1)
	snap := func(k int) {
		ds, err := chk.Check(probes...)
		if err != nil {
			t.Fatalf("oracle state %d: %v", k, err)
		}
		for i := range ds {
			ds[i] = stripDecision(ds[i])
		}
		oracle[k] = ds
	}
	snap(0)
	for k := 1; k <= mutations; k++ {
		b := wideData
		if k%2 == 1 {
			// Step k of the live script is setData(st, k-1): scripts
			// count applied mutations, setData counts from step index.
			b = narrowData
		}
		if err := chk.SetBrackets("data", true, true, false, b, 0); err != nil {
			t.Fatalf("oracle mutate %d: %v", k, err)
		}
		snap(k)
	}
	return oracle
}

// servedDecision is one answer a cached client returned during the
// concurrent phase, with the interval it claimed.
type servedDecision struct {
	probe int
	dec   rings.Decision
}

// TestDistributedOracleDifferential is the tentpole's acceptance test:
// cached wire clients race a supervisor mutating shard 0 through a
// known script, and every served decision — lease hit or miss — must
// equal the oracle's answer at some store state inside the decision's
// recorded epoch interval. Run under -race in CI.
func TestDistributedOracleDifferential(t *testing.T) {
	const (
		clients   = 3
		rounds    = 20
		perRound  = 2
		mutations = rounds * perRound
	)
	fx := startRemoteFixture(t)
	probes := leaseProbes()
	oracle := buildLeaseOracle(t, probes, mutations)
	st := fx.def.Store()

	rcs := make([]*rings.RemoteChecker, clients)
	for c := range rcs {
		rc, err := rings.DialRemote(fx.wireAddr, rings.RemoteConfig{
			Transport: "wire",
			CacheSize: 4096,
			CacheTTL:  time.Hour,
		})
		if err != nil {
			t.Fatalf("dial client %d: %v", c, err)
		}
		defer rc.Close()
		rcs[c] = rc
	}

	// Concurrent phase: each round, every client answers the probe
	// batch (from leases where it can) while the mutator walks the
	// script — a round barrier keeps the interleaving adversarial
	// without letting either side starve.
	var mu sync.Mutex
	served := make([][]servedDecision, clients)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for c := range rcs {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				dst := make([]rings.Decision, len(probes))
				if err := rcs[c].CheckInto(probes, dst); err != nil {
					if errors.Is(err, rings.ErrQueueFull) {
						return // backpressure is a legal answer
					}
					t.Errorf("client %d round %d: %v", c, r, err)
					return
				}
				mu.Lock()
				for p := range dst {
					served[c] = append(served[c], servedDecision{probe: p, dec: dst[p]})
				}
				mu.Unlock()
			}(c)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perRound; i++ {
				if err := setData(st, r*perRound+i); err != nil {
					t.Errorf("mutate round %d: %v", r, err)
				}
			}
		}()
		wg.Wait()
	}

	if got := st.ShardVersion(0); got != 2*mutations {
		t.Fatalf("shard 0 epoch = %d, want %d", got, 2*mutations)
	}

	// Replay: every served decision must match the oracle at some
	// state within its epoch interval.
	var total, hits, shootdowns uint64
	for c, list := range served {
		for _, sd := range list {
			total++
			if sd.dec.Shard != 0 {
				t.Fatalf("client %d probe %d: shard %d, want 0 (%+v)", c, sd.probe, sd.dec.Shard, sd.dec)
			}
			lo, hi := sd.dec.VersionLo/2, (sd.dec.VersionHi+1)/2
			if hi > uint64(mutations) {
				hi = uint64(mutations)
			}
			got := stripDecision(sd.dec)
			matched := false
			for k := lo; k <= hi; k++ {
				if got == oracle[k][sd.probe] {
					matched = true
					break
				}
			}
			if !matched {
				t.Fatalf("client %d probe %d: decision %+v matches no oracle state in [%d,%d]",
					c, sd.probe, got, lo, hi)
			}
		}
	}
	for c, rc := range rcs {
		cs := rc.CacheStats()
		hits += cs.Hits
		shootdowns += cs.Shootdowns
		if cs.Hits+cs.Misses == 0 {
			t.Errorf("client %d never consulted its cache", c)
		}
	}
	if total == 0 {
		t.Fatal("no decisions served")
	}
	if hits == 0 {
		t.Error("no lease hits across the whole phase — the cache never engaged")
	}
	if shootdowns == 0 {
		t.Error("no shootdowns received — the invalidation stream never engaged")
	}
	t.Logf("replayed %d decisions: %d lease hits, %d shootdowns", total, hits, shootdowns)
}

// TestShootdownOrdering checks the no-stale-after-acknowledge
// property in isolation: once a client has processed a shootdown (its
// counter moved, so the floor is in place), the very next lookup
// misses the retired lease and fetches the post-mutation answer.
func TestShootdownOrdering(t *testing.T) {
	fx := startRemoteFixture(t)
	rc, err := rings.DialRemote(fx.wireAddr, rings.RemoteConfig{
		Transport: "wire", CacheSize: 64, CacheTTL: time.Hour,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	probe := []rings.Query{{Op: rings.OpAccess, Ring: 4, Segment: "data", Wordno: 1, Kind: rings.AccessRead}}
	dst := make([]rings.Decision, 1)
	if err := rc.CheckInto(probe, dst); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !dst[0].Allowed {
		t.Fatalf("warm decision denied: %+v", dst[0])
	}
	if err := rc.CheckInto(probe, dst); err != nil {
		t.Fatalf("hit: %v", err)
	}
	if rc.CacheStats().Hits == 0 {
		t.Fatal("second lookup was not a lease hit")
	}

	if err := setData(fx.def.Store(), 0); err != nil { // narrow: ring 4 read now denied
		t.Fatalf("mutate: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rc.CacheStats().Shootdowns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shootdown never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	// The shootdown counter moved, so its floor is already in place:
	// this lookup must not serve the retired allow.
	missesBefore := rc.CacheStats().Misses
	if err := rc.CheckInto(probe, dst); err != nil {
		t.Fatalf("post-shootdown check: %v", err)
	}
	if dst[0].Allowed {
		t.Fatalf("stale allow served after acknowledged shootdown: %+v", dst[0])
	}
	if rc.CacheStats().Misses == missesBefore {
		t.Error("post-shootdown lookup did not re-fetch")
	}
	// And the refreshed deny is itself leased.
	hitsBefore := rc.CacheStats().Hits
	if err := rc.CheckInto(probe, dst); err != nil {
		t.Fatalf("re-hit: %v", err)
	}
	if dst[0].Allowed || rc.CacheStats().Hits == hitsBefore {
		t.Errorf("refreshed lease not served: %+v (hits %d)", dst[0], rc.CacheStats().Hits)
	}
}

// TestLeaseTTLBoundsStaleness checks the wall-clock fallback: with no
// shootdown at all, a lease older than the TTL is re-fetched rather
// than served forever.
func TestLeaseTTLBoundsStaleness(t *testing.T) {
	fx := startRemoteFixture(t)
	rc, err := rings.DialRemote(fx.wireAddr, rings.RemoteConfig{
		Transport: "wire", CacheSize: 64, CacheTTL: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	probe := []rings.Query{{Op: rings.OpAccess, Ring: 4, Segment: "data", Wordno: 1, Kind: rings.AccessRead}}
	dst := make([]rings.Decision, 1)
	for i := 0; i < 2; i++ {
		if err := rc.CheckInto(probe, dst); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	if rc.CacheStats().Hits == 0 {
		t.Fatal("lease never served inside the TTL")
	}
	time.Sleep(60 * time.Millisecond)
	missesBefore := rc.CacheStats().Misses
	if err := rc.CheckInto(probe, dst); err != nil {
		t.Fatalf("post-TTL check: %v", err)
	}
	if rc.CacheStats().Misses == missesBefore {
		t.Error("lease served past its TTL")
	}
}

// TestLeaseFailClosedOnDrop checks the hard-drop rule: when the
// session dies with the tenant (evict sends LeaseExpire, then the
// stream ends), the whole cache is dropped and lookups fail closed —
// an error, never a cached answer.
func TestLeaseFailClosedOnDrop(t *testing.T) {
	fx := startRemoteFixture(t)
	rc, err := rings.DialRemote(fx.wireAddr, rings.RemoteConfig{
		Transport: "wire", CacheSize: 64, CacheTTL: time.Hour,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	probe := []rings.Query{{Op: rings.OpAccess, Ring: 4, Segment: "data", Wordno: 1, Kind: rings.AccessRead}}
	dst := make([]rings.Decision, 1)
	for i := 0; i < 2; i++ {
		if err := rc.CheckInto(probe, dst); err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
	}
	hitsBefore := rc.CacheStats().Hits
	if hitsBefore == 0 {
		t.Fatal("cache never engaged before the drop")
	}

	if err := fx.reg.Evict(tenant.DefaultTenant); err != nil {
		t.Fatalf("evict: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rc.CacheStats().Expires == 0 && rc.CacheStats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease-expire never processed")
		}
		time.Sleep(time.Millisecond)
	}

	if err := rc.CheckInto(probe, dst); err == nil {
		t.Fatal("lookup succeeded against an evicted tenant — a cached answer leaked")
	}
	if got := rc.CacheStats().Hits; got != hitsBefore {
		t.Errorf("hits moved %d -> %d after the drop", hitsBefore, got)
	}
	if rc.CacheStats().Flushes == 0 {
		t.Error("cache was not flushed on drop")
	}
}

// TestLeaseReconnectResubscribes checks recovery: after the server
// goes away mid-session, a cached client lapses (every lookup fails),
// and once a server is back on the same address it redials,
// resubscribes, starts from an empty cache, and serves the *new*
// server's answers.
func TestLeaseReconnectResubscribes(t *testing.T) {
	mk := func() (*tenant.Registry, *tenant.Tenant) {
		reg := tenant.NewRegistry(tenant.Config{MaxTenants: 4, WorkerBudget: 8})
		def, err := reg.Load(tenant.DefaultTenant, checkerImage(), tenant.TenantConfig{Workers: 1})
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return reg, def
	}
	reg1, _ := mk()
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln1.Addr().String()
	ws1 := wire.NewServer(reg1, wire.Config{})
	go ws1.Serve(ln1)

	rc, err := rings.DialRemote(addr, rings.RemoteConfig{
		Transport: "wire", CacheSize: 64, CacheTTL: time.Hour,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	probe := []rings.Query{{Op: rings.OpAccess, Ring: 4, Segment: "data", Wordno: 1, Kind: rings.AccessRead}}
	dst := make([]rings.Decision, 1)
	for i := 0; i < 2; i++ {
		if err := rc.CheckInto(probe, dst); err != nil {
			t.Fatalf("warm %d: %v", i, err)
		}
	}
	if !dst[0].Allowed {
		t.Fatalf("pre-drop decision denied: %+v", dst[0])
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	ws1.Shutdown(ctx)
	cancel()
	// Until the client processes the GoAway the old lease may still be
	// served (staleness bounded by the TTL); the hard-drop guarantee
	// begins at the lapse, so wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for rc.CacheStats().Flushes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cache never lapsed after server shutdown")
		}
		time.Sleep(time.Millisecond)
	}

	// Second server on the same address, same image but already
	// narrowed: the reconnected client must see the deny, proving no
	// lease survived the reconnect.
	reg2, def2 := mk()
	if err := setData(def2.Store(), 0); err != nil {
		t.Fatalf("narrow second server: %v", err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	ws2 := wire.NewServer(reg2, wire.Config{})
	go ws2.Serve(ln2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws2.Shutdown(ctx)
	}()

	deadline = time.Now().Add(5 * time.Second)
	for {
		err := rc.CheckInto(probe, dst)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if dst[0].Allowed {
		t.Fatalf("pre-drop lease served after reconnect: %+v", dst[0])
	}
	if rc.CacheStats().Flushes < 2 {
		t.Errorf("flushes = %d, want >= 2 (lapse + revive)", rc.CacheStats().Flushes)
	}
	// The revived cache leases again.
	hitsBefore := rc.CacheStats().Hits
	if err := rc.CheckInto(probe, dst); err != nil {
		t.Fatalf("post-recovery hit: %v", err)
	}
	if rc.CacheStats().Hits == hitsBefore {
		t.Error("revived cache never served a lease")
	}
}

// TestRemoteCacheHitZeroAlloc is the alloc gate for the lease hit
// path: a warm all-hit batch completes without a single allocation.
// CI runs it by name alongside the other zero-alloc gates.
func TestRemoteCacheHitZeroAlloc(t *testing.T) {
	fx := startRemoteFixture(t)
	rc, err := rings.DialRemote(fx.wireAddr, rings.RemoteConfig{
		Transport: "wire", CacheSize: 256, CacheTTL: time.Hour,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer rc.Close()

	queries := make([]rings.Query, 16)
	for i := range queries {
		queries[i] = rings.Query{Op: rings.OpAccess, Ring: 4, Segment: "data",
			Wordno: uint32(i), Kind: rings.AccessRead}
	}
	dst := make([]rings.Decision, len(queries))
	if err := rc.CheckInto(queries, dst); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := rc.CheckInto(queries, dst); err != nil {
			t.Fatalf("hit batch: %v", err)
		}
	}); avg != 0 {
		t.Errorf("lease hit path allocates %.1f times per batch, want 0", avg)
	}
	cs := rc.CacheStats()
	if cs.Misses > uint64(len(queries)) {
		t.Errorf("warm batch still missing: %+v", cs)
	}
}

// TestDialRemoteHTTPRejectsCache checks the configuration guard: the
// HTTP transport has no shootdown stream, so a cache there could never
// be kept coherent and the dial must refuse it.
func TestDialRemoteHTTPRejectsCache(t *testing.T) {
	fx := startRemoteFixture(t)
	if _, err := rings.DialRemote(fx.httpURL, rings.RemoteConfig{
		Transport: "http", CacheSize: 64,
	}); err == nil {
		t.Fatal("HTTP dial with CacheSize succeeded")
	}
}
