package rings

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// leaseFixture is a warm cache holding one allowed read lease at shard
// 0, epoch 2, plus the query and key that reach it.
func leaseFixture(ttl time.Duration) (*leaseCache, Query, leaseKey, int64) {
	lc := newLeaseCache(8, ttl)
	q := Query{Op: OpAccess, Ring: 4, Segno: 0, Wordno: 7, Kind: AccessRead}
	k, ok := leaseKeyOf(&q)
	if !ok {
		panic("fixture query not cacheable")
	}
	now := time.Now().UnixNano()
	lc.put(k, Decision{Allowed: true, Shard: 0, VersionLo: 2, VersionHi: 2}, now, lc.gen.Load())
	return lc, q, k, now
}

// hit reports whether the cache serves q at time now.
func hit(lc *leaseCache, q Query, now int64) bool {
	dst := make([]Decision, 1)
	return len(lc.serveHits([]Query{q}, dst, now, true, nil)) == 0
}

func TestLeaseKeyOfEdges(t *testing.T) {
	eff := Ring(3)
	longChain := make([]ChainStep, maxLeaseChain+1)
	uncacheable := []Query{
		{Op: "sideload", Ring: 1},                      // unknown op
		{Op: OpAccess, Ring: 1, Kind: AccessKind(99)},  // invalid kind
		{Op: OpAccess, Ring: 1, Kind: AccessKind(256)}, // would alias AccessRead if truncated
		{Op: OpEffRing, Ring: 1, Chain: longChain},     // chain too long
	}
	for _, q := range uncacheable {
		if _, ok := leaseKeyOf(&q); ok {
			t.Errorf("query %+v cacheable, want rejected", q)
		}
	}

	// Fields an op ignores are canonicalized: two return queries that
	// differ only in Kind share one lease.
	a := Query{Op: OpReturn, Ring: 2, Segno: 1, Kind: AccessRead}
	b := Query{Op: OpReturn, Ring: 2, Segno: 1, Kind: AccessWrite}
	ka, _ := leaseKeyOf(&a)
	kb, _ := leaseKeyOf(&b)
	if ka != kb {
		t.Error("return keys differ on ignored Kind")
	}

	// But fields the decision reads must separate keys.
	distinct := []Query{
		{Op: OpAccess, Ring: 2, Segno: 1, Kind: AccessRead},
		{Op: OpAccess, Ring: 2, Segno: 1, Kind: AccessWrite},
		{Op: OpAccess, Ring: 3, Segno: 1, Kind: AccessRead},
		{Op: OpCall, Ring: 2, Segno: 1},
		{Op: OpCall, Ring: 2, Segno: 1, SameSegment: true},
		{Op: OpCall, Ring: 2, Segno: 1, SameSegment: true, EffRing: &eff},
		{Op: OpReturn, Ring: 2, Segno: 1},
		{Op: OpEffRing, Ring: 2, Chain: []ChainStep{{Ring: 1, Segno: 1}}},
		{Op: OpEffRing, Ring: 2, Chain: []ChainStep{{PR: true, Ring: 1, Segno: 1}}},
		{Op: OpAccess, Ring: 2, Segment: "data", Kind: AccessRead},
	}
	seen := make(map[leaseKey]int)
	for i := range distinct {
		k, ok := leaseKeyOf(&distinct[i])
		if !ok {
			t.Fatalf("query %d not cacheable", i)
		}
		if j, dup := seen[k]; dup {
			t.Errorf("queries %d and %d collide: %+v", j, i, k)
		}
		seen[k] = i
	}
}

func TestLeaseTTLExpiry(t *testing.T) {
	lc, q, _, now := leaseFixture(time.Millisecond)
	if !hit(lc, q, now) {
		t.Fatal("fresh lease missed")
	}
	if hit(lc, q, now+int64(2*time.Millisecond)) {
		t.Error("expired lease served")
	}
}

func TestLeaseShootdownFloor(t *testing.T) {
	lc, q, _, now := leaseFixture(time.Hour)
	lc.shootdown(wire.Shootdown{Shard: 0, Epoch: 4})
	if hit(lc, q, now) {
		t.Error("lease at epoch 2 served past a shard-0 floor of 4")
	}
	// A replayed older shootdown must not lower the floor.
	lc.shootdown(wire.Shootdown{Shard: 0, Epoch: 2})
	if hit(lc, q, now) {
		t.Error("replayed epoch-2 shootdown re-enabled the retired lease")
	}
	if got := lc.stats().Shootdowns; got != 2 {
		t.Errorf("shootdown count = %d, want 2", got)
	}
	// A lease at or beyond the floor still serves: shootdowns retire
	// strictly older publications.
	lc.put(mustKey(t, q), Decision{Allowed: true, Shard: 0, VersionLo: 4, VersionHi: 4}, now, lc.gen.Load())
	if !hit(lc, q, now) {
		t.Error("lease at the floor epoch missed")
	}
	// Floors are per shard: shard 1 is untouched.
	q2 := Query{Op: OpAccess, Ring: 4, Segno: 1, Kind: AccessRead}
	lc.put(mustKey(t, q2), Decision{Allowed: true, Shard: 1, VersionLo: 2, VersionHi: 2}, now, lc.gen.Load())
	if !hit(lc, q2, now) {
		t.Error("shard-1 lease retired by shard-0 shootdown")
	}
}

func TestLeaseLapseAndGeneration(t *testing.T) {
	lc, q, k, now := leaseFixture(time.Hour)
	genBefore := lc.gen.Load()
	lc.lapse()
	if hit(lc, q, now) {
		t.Error("lapsed cache served a lease")
	}
	// An insert whose fetch began before the lapse must be refused:
	// the mutations it missed were never announced to any subscription.
	lc.put(k, Decision{Allowed: true, Shard: 0, VersionLo: 2, VersionHi: 2}, now, genBefore)
	lc.revive()
	if hit(lc, q, now) {
		t.Error("stale-generation insert survived into the revived cache")
	}
	// A current-generation insert works again after revive.
	lc.put(k, Decision{Allowed: true, Shard: 0, VersionLo: 2, VersionHi: 2}, now, lc.gen.Load())
	if !hit(lc, q, now) {
		t.Error("post-revive insert missed")
	}
	if lc.stats().Flushes < 2 {
		t.Errorf("flushes = %d, want >= 2 (lapse + revive)", lc.stats().Flushes)
	}
}

func TestLeasePutRejectsUnshardable(t *testing.T) {
	lc, q, k, now := leaseFixture(time.Hour)
	lc.flush()
	gen := lc.gen.Load()
	lc.put(k, Decision{Err: "queue full", Shard: 0}, now, gen)
	lc.put(k, Decision{Allowed: true, Shard: -1, VersionLo: 2, VersionHi: 4}, now, gen)
	if hit(lc, q, now) {
		t.Error("error or multi-shard decision was cached")
	}
}

func TestLeaseEvictionBoundsSize(t *testing.T) {
	lc := newLeaseCache(4, time.Hour)
	now := time.Now().UnixNano()
	gen := lc.gen.Load()
	for i := 0; i < 32; i++ {
		q := Query{Op: OpAccess, Ring: 4, Segno: uint32(i), Kind: AccessRead}
		lc.put(mustKey(t, q), Decision{Allowed: true, Shard: 0, VersionLo: 2, VersionHi: 2}, now, gen)
	}
	if s := lc.stats().Size; s > 4 {
		t.Errorf("cache size %d exceeds cap 4", s)
	}
	// Replacing an existing key does not evict.
	lc2 := newLeaseCache(1, time.Hour)
	q := Query{Op: OpAccess, Ring: 4, Segno: 0, Kind: AccessRead}
	k := mustKey(t, q)
	lc2.put(k, Decision{Allowed: true, Shard: 0, VersionLo: 2, VersionHi: 2}, now, lc2.gen.Load())
	lc2.put(k, Decision{Allowed: false, Shard: 0, VersionLo: 4, VersionHi: 4}, now, lc2.gen.Load())
	dst := make([]Decision, 1)
	if m := lc2.serveHits([]Query{q}, dst, now, true, nil); len(m) != 0 {
		t.Fatal("replaced lease missed")
	}
	if dst[0].Allowed || dst[0].VersionLo != 4 {
		t.Errorf("replacement did not take: %+v", dst[0])
	}
}

func mustKey(t *testing.T, q Query) leaseKey {
	t.Helper()
	k, ok := leaseKeyOf(&q)
	if !ok {
		t.Fatalf("query %+v not cacheable", q)
	}
	return k
}
