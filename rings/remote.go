package rings

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/wire"
)

// RemoteConfig sizes a RemoteChecker built with DialRemote. The zero
// value picks the transport from the target's scheme and the "default"
// tenant.
type RemoteConfig struct {
	// Transport selects "http" (request/response JSON against ringd's
	// /v1 surface) or "wire" (one persistent binary streaming session,
	// pipelined batches). Empty infers from the target: an http:// or
	// https:// URL means HTTP, a wire:// URL or bare host:port means
	// wire.
	Transport string
	// Tenant names the image the session decides against; empty means
	// "default". Over HTTP this routes through /v1/t/{name}; over the
	// wire the session binds the tenant at the Hello handshake.
	Tenant string
	// Timeout bounds each HTTP request, or the wire dial+handshake;
	// default 30s.
	Timeout time.Duration
}

// RemoteChecker is Checker's remote mode: the same batch-decision
// surface served by a running ringd, over either transport. A single
// RemoteChecker is safe for concurrent use; on the wire transport
// concurrent CheckInto calls pipeline down one session and complete
// out of order by correlation ID.
type RemoteChecker struct {
	// Exactly one transport is non-nil.
	wc *wire.Client

	hc     *http.Client
	target string // HTTP base URL, tenant-scoped
	health string // HTTP healthz URL
}

// RemoteHealth is the served image's shape, from GET /healthz or a
// wire ping frame.
type RemoteHealth struct {
	Workers  int
	Segments int
	Shards   int
	Version  uint64
}

// DialRemote connects to a ringd at target. HTTP targets are base
// URLs ("http://host:8642"); wire targets are "wire://host:8643" or a
// bare "host:8643". The wire transport holds one TCP session open
// until Close.
func DialRemote(target string, cfg RemoteConfig) (*RemoteChecker, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	transport := cfg.Transport
	if transport == "" {
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
			transport = "http"
		} else {
			transport = "wire"
		}
	}
	switch transport {
	case "http":
		base := strings.TrimSuffix(target, "/")
		rc := &RemoteChecker{
			hc:     &http.Client{Timeout: cfg.Timeout},
			target: base,
			health: base + "/healthz",
		}
		if cfg.Tenant != "" {
			rc.target = base + "/v1/t/" + cfg.Tenant
			rc.health = rc.target + "/healthz"
		} else {
			rc.target = base + "/v1"
		}
		return rc, nil
	case "wire":
		addr := strings.TrimPrefix(target, "wire://")
		wc, err := wire.Dial(addr, wire.ClientConfig{Tenant: cfg.Tenant, DialTimeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		return &RemoteChecker{wc: wc}, nil
	default:
		return nil, fmt.Errorf("rings: unknown remote transport %q", cfg.Transport)
	}
}

// Close releases the transport (the wire session sends nothing further
// and hangs up).
func (rc *RemoteChecker) Close() error {
	if rc.wc != nil {
		return rc.wc.Close()
	}
	rc.hc.CloseIdleConnections()
	return nil
}

// Check answers a batch of queries against the remote image.
func (rc *RemoteChecker) Check(queries ...Query) ([]Decision, error) {
	dst := make([]Decision, len(queries))
	if err := rc.CheckInto(queries, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// CheckInto answers a batch into a caller-supplied decision slice,
// mirroring Checker.CheckInto. A shed batch (the remote queue was
// full) reports ErrQueueFull, whichever transport carried it.
func (rc *RemoteChecker) CheckInto(queries []Query, dst []Decision) error {
	if rc.wc != nil {
		return mapWireErr(rc.wc.CheckInto(queries, dst))
	}
	body, err := marshalCheck(queries)
	if err != nil {
		return err
	}
	resp, err := rc.hc.Post(rc.target+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return ErrQueueFull
	}
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	var cr struct {
		Decisions []Decision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return err
	}
	if len(cr.Decisions) != len(queries) {
		return fmt.Errorf("rings: %d decisions for %d queries", len(cr.Decisions), len(queries))
	}
	copy(dst, cr.Decisions)
	return nil
}

// Health reports the served image's shape.
func (rc *RemoteChecker) Health() (RemoteHealth, error) {
	if rc.wc != nil {
		h, err := rc.wc.Ping()
		if err != nil {
			return RemoteHealth{}, mapWireErr(err)
		}
		return RemoteHealth{Workers: int(h.Workers), Segments: int(h.Segments),
			Shards: int(h.Shards), Version: h.StoreVersion}, nil
	}
	resp, err := rc.hc.Get(rc.health)
	if err != nil {
		return RemoteHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RemoteHealth{}, httpError(resp)
	}
	var h struct {
		OK       bool   `json:"ok"`
		Workers  int    `json:"workers"`
		Segments int    `json:"segments"`
		Shards   int    `json:"shards"`
		Version  uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return RemoteHealth{}, err
	}
	if !h.OK {
		return RemoteHealth{}, errors.New("rings: remote unhealthy")
	}
	return RemoteHealth{Workers: h.Workers, Segments: h.Segments, Shards: h.Shards, Version: h.Version}, nil
}

// mapWireErr folds the wire transport's shed frame back into the
// vocabulary in-process callers already handle.
func mapWireErr(err error) error {
	var ef *wire.ErrFrame
	if errors.As(err, &ef) && ef.Code == wire.CodeShed {
		return ErrQueueFull
	}
	return err
}

// httpError reads a JSON error body into an error value.
func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(msg, &e) == nil && e.Error != "" {
		return fmt.Errorf("rings: remote: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("rings: remote: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}

// marshalCheck builds the /v1/check JSON body (access kinds travel as
// strings on the HTTP transport).
func marshalCheck(queries []Query) ([]byte, error) {
	type wq struct {
		Op          string      `json:"op"`
		Ring        uint8       `json:"ring"`
		Segment     string      `json:"segment,omitempty"`
		Segno       uint32      `json:"segno,omitempty"`
		Wordno      uint32      `json:"wordno,omitempty"`
		Kind        string      `json:"kind,omitempty"`
		EffRing     *uint8      `json:"eff_ring,omitempty"`
		SameSegment bool        `json:"same_segment,omitempty"`
		Chain       []ChainStep `json:"chain,omitempty"`
	}
	kinds := map[AccessKind]string{
		AccessRead: "read", AccessWrite: "write", AccessExecute: "execute",
	}
	out := struct {
		Queries []wq `json:"queries"`
	}{Queries: make([]wq, len(queries))}
	for i, q := range queries {
		w := wq{Op: string(q.Op), Ring: uint8(q.Ring), Segment: q.Segment, Segno: q.Segno,
			Wordno: q.Wordno, SameSegment: q.SameSegment, Chain: q.Chain}
		if q.Op == OpAccess {
			w.Kind = kinds[q.Kind]
		}
		if q.EffRing != nil {
			r := uint8(*q.EffRing)
			w.EffRing = &r
		}
		out.Queries[i] = w
	}
	return json.Marshal(out)
}
