package rings

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// RemoteConfig sizes a RemoteChecker built with DialRemote. The zero
// value picks the transport from the target's scheme and the "default"
// tenant.
type RemoteConfig struct {
	// Transport selects "http" (request/response JSON against ringd's
	// /v1 surface) or "wire" (one persistent binary streaming session,
	// pipelined batches). Empty infers from the target: an http:// or
	// https:// URL means HTTP, a wire:// URL or bare host:port means
	// wire.
	Transport string
	// Tenant names the image the session decides against; empty means
	// "default". Over HTTP this routes through /v1/t/{name}; over the
	// wire the session binds the tenant at the Hello handshake.
	Tenant string
	// Timeout bounds each HTTP request, or the wire dial+handshake;
	// default 30s.
	Timeout time.Duration

	// CacheSize, when positive, puts a bounded decision-lease cache in
	// front of the session (wire transport only): decisions are cached
	// by query tuple, tagged with their shard publication epoch, kept
	// coherent by the server's shootdown stream, and bounded in
	// staleness by CacheTTL. See lease.go for the staleness argument.
	CacheSize int
	// CacheTTL bounds how long a lease may be served if the shootdown
	// stream lags; default 1s when CacheSize is set.
	CacheTTL time.Duration
}

// RemoteChecker is Checker's remote mode: the same batch-decision
// surface served by a running ringd, over either transport. A single
// RemoteChecker is safe for concurrent use; on the wire transport
// concurrent CheckInto calls pipeline down one session and complete
// out of order by correlation ID.
type RemoteChecker struct {
	// wcp holds the wire session (nil on the HTTP transport); cached
	// checkers swap in a fresh session when the subscription stream
	// lapses and a redial succeeds.
	wcp      atomic.Pointer[wire.Client]
	wireAddr string
	wcfg     wire.ClientConfig

	cache      *leaseCache // nil when dialed without CacheSize
	redialMu   sync.Mutex
	lastRedial atomic.Int64
	closed     atomic.Bool

	hc     *http.Client
	target string // HTTP base URL, tenant-scoped
	health string // HTTP healthz URL
}

// RemoteHealth is the served image's shape, from GET /healthz or a
// wire ping frame.
type RemoteHealth struct {
	Workers  int
	Segments int
	Shards   int
	Version  uint64
}

// DialRemote connects to a ringd at target. HTTP targets are base
// URLs ("http://host:8642"); wire targets are "wire://host:8643" or a
// bare "host:8643". The wire transport holds one TCP session open
// until Close.
func DialRemote(target string, cfg RemoteConfig) (*RemoteChecker, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	transport := cfg.Transport
	if transport == "" {
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
			transport = "http"
		} else {
			transport = "wire"
		}
	}
	switch transport {
	case "http":
		if cfg.CacheSize > 0 {
			return nil, errors.New("rings: decision-lease cache requires the wire transport (no shootdown stream over HTTP)")
		}
		base := strings.TrimSuffix(target, "/")
		rc := &RemoteChecker{
			hc:     &http.Client{Timeout: cfg.Timeout},
			target: base,
			health: base + "/healthz",
		}
		if cfg.Tenant != "" {
			rc.target = base + "/v1/t/" + cfg.Tenant
			rc.health = rc.target + "/healthz"
		} else {
			rc.target = base + "/v1"
		}
		return rc, nil
	case "wire":
		addr := strings.TrimPrefix(target, "wire://")
		rc := &RemoteChecker{wireAddr: addr}
		rc.wcfg = wire.ClientConfig{Tenant: cfg.Tenant, DialTimeout: cfg.Timeout}
		if cfg.CacheSize > 0 {
			ttl := cfg.CacheTTL
			if ttl <= 0 {
				ttl = time.Second
			}
			cache := newLeaseCache(cfg.CacheSize, ttl)
			rc.cache = cache
			rc.wcfg.OnShootdown = cache.shootdown
			rc.wcfg.OnLeaseExpire = func(le wire.LeaseExpire) {
				cache.expires.Add(1)
				cache.lapse()
			}
			rc.wcfg.OnClose = func(error) { cache.lapse() }
		}
		wc, err := wire.Dial(addr, rc.wcfg)
		if err != nil {
			return nil, err
		}
		if rc.cache != nil {
			if _, err := wc.Subscribe(); err != nil {
				wc.Close()
				return nil, err
			}
		}
		rc.wcp.Store(wc)
		return rc, nil
	default:
		return nil, fmt.Errorf("rings: unknown remote transport %q", cfg.Transport)
	}
}

// Close releases the transport (the wire session sends nothing further
// and hangs up).
func (rc *RemoteChecker) Close() error {
	rc.closed.Store(true)
	if wc := rc.wcp.Load(); wc != nil {
		return wc.Close()
	}
	rc.hc.CloseIdleConnections()
	return nil
}

// Check answers a batch of queries against the remote image.
func (rc *RemoteChecker) Check(queries ...Query) ([]Decision, error) {
	dst := make([]Decision, len(queries))
	if err := rc.CheckInto(queries, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// CheckInto answers a batch into a caller-supplied decision slice,
// mirroring Checker.CheckInto. A shed batch (the remote queue was
// full) reports ErrQueueFull, whichever transport carried it.
func (rc *RemoteChecker) CheckInto(queries []Query, dst []Decision) error {
	if len(dst) < len(queries) {
		return errors.New("rings: dst shorter than queries")
	}
	if rc.cache != nil {
		return rc.cachedCheckInto(queries, dst)
	}
	if wc := rc.wcp.Load(); wc != nil {
		return mapWireErr(wc.CheckInto(queries, dst))
	}
	body, err := marshalCheck(queries)
	if err != nil {
		return err
	}
	resp, err := rc.hc.Post(rc.target+"/check", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return ErrQueueFull
	}
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	var cr struct {
		Decisions []Decision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return err
	}
	if len(cr.Decisions) != len(queries) {
		return fmt.Errorf("rings: %d decisions for %d queries", len(cr.Decisions), len(queries))
	}
	copy(dst, cr.Decisions)
	return nil
}

// Health reports the served image's shape.
func (rc *RemoteChecker) Health() (RemoteHealth, error) {
	if wc := rc.wcp.Load(); wc != nil {
		h, err := wc.Ping()
		if err != nil {
			return RemoteHealth{}, mapWireErr(err)
		}
		return RemoteHealth{Workers: int(h.Workers), Segments: int(h.Segments),
			Shards: int(h.Shards), Version: h.StoreVersion}, nil
	}
	resp, err := rc.hc.Get(rc.health)
	if err != nil {
		return RemoteHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RemoteHealth{}, httpError(resp)
	}
	var h struct {
		OK       bool   `json:"ok"`
		Workers  int    `json:"workers"`
		Segments int    `json:"segments"`
		Shards   int    `json:"shards"`
		Version  uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return RemoteHealth{}, err
	}
	if !h.OK {
		return RemoteHealth{}, errors.New("rings: remote unhealthy")
	}
	return RemoteHealth{Workers: h.Workers, Segments: h.Segments, Shards: h.Shards, Version: h.Version}, nil
}

// mapWireErr folds the wire transport's shed frame back into the
// vocabulary in-process callers already handle.
func mapWireErr(err error) error {
	var ef *wire.ErrFrame
	if errors.As(err, &ef) && ef.Code == wire.CodeShed {
		return ErrQueueFull
	}
	return err
}

// httpError reads a JSON error body into an error value.
func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(msg, &e) == nil && e.Error != "" {
		return fmt.Errorf("rings: remote: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("rings: remote: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
}

// marshalCheck builds the /v1/check JSON body (access kinds travel as
// strings on the HTTP transport).
func marshalCheck(queries []Query) ([]byte, error) {
	type wq struct {
		Op          string      `json:"op"`
		Ring        uint8       `json:"ring"`
		Segment     string      `json:"segment,omitempty"`
		Segno       uint32      `json:"segno,omitempty"`
		Wordno      uint32      `json:"wordno,omitempty"`
		Kind        string      `json:"kind,omitempty"`
		EffRing     *uint8      `json:"eff_ring,omitempty"`
		SameSegment bool        `json:"same_segment,omitempty"`
		Chain       []ChainStep `json:"chain,omitempty"`
	}
	kinds := map[AccessKind]string{
		AccessRead: "read", AccessWrite: "write", AccessExecute: "execute",
	}
	out := struct {
		Queries []wq `json:"queries"`
	}{Queries: make([]wq, len(queries))}
	for i, q := range queries {
		w := wq{Op: string(q.Op), Ring: uint8(q.Ring), Segment: q.Segment, Segno: q.Segno,
			Wordno: q.Wordno, SameSegment: q.SameSegment, Chain: q.Chain}
		if q.Op == OpAccess {
			w.Kind = kinds[q.Kind]
		}
		if q.EffRing != nil {
			r := uint8(*q.EffRing)
			w.EffRing = &r
		}
		out.Queries[i] = w
	}
	return json.Marshal(out)
}
