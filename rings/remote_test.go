package rings_test

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/tenant"
	"repro/internal/wire"
	"repro/rings"
)

// remoteFixture serves checkerImage() over both transports from one
// registry: an httptest server for the JSON surface and a loopback
// wire.Server for the binary streaming surface.
type remoteFixture struct {
	reg      *tenant.Registry
	def      *tenant.Tenant
	httpURL  string
	wireAddr string
}

func startRemoteFixture(t *testing.T) *remoteFixture {
	t.Helper()
	reg := tenant.NewRegistry(tenant.Config{MaxTenants: 4, WorkerBudget: 8})
	def, err := reg.Load(tenant.DefaultTenant, checkerImage(), tenant.TenantConfig{Workers: 1})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	h := tenant.NewHandler(reg, tenant.HandlerOptions{})
	hs := httptest.NewServer(h)
	t.Cleanup(func() {
		hs.Close()
		h.Close()
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ws := wire.NewServer(reg, wire.Config{})
	go ws.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
	})
	return &remoteFixture{reg: reg, def: def, httpURL: hs.URL, wireAddr: ln.Addr().String()}
}

// remoteQueries is a small batch covering access, downward call, and
// effective-ring evaluation against checkerImage().
func remoteQueries() []rings.Query {
	return []rings.Query{
		{Op: rings.OpAccess, Ring: 4, Segment: "data", Wordno: 3, Kind: rings.AccessRead},
		{Op: rings.OpAccess, Ring: 6, Segment: "secret", Kind: rings.AccessRead},
		{Op: rings.OpCall, Ring: 5, Segment: "code", Wordno: 1},
		{Op: rings.OpEffRing, Ring: 2, Chain: []rings.ChainStep{{Ring: 5, Segno: 0}, {PR: true, Ring: 6}}},
	}
}

// TestDialRemoteBothTransports checks the two remote modes answer the
// same batch identically (worker indices aside) and match the
// in-process oracle.
func TestDialRemoteBothTransports(t *testing.T) {
	fx := startRemoteFixture(t)
	queries := remoteQueries()
	want, err := fx.def.Submit(context.Background(), queries)
	if err != nil {
		t.Fatalf("in-process Submit: %v", err)
	}

	for _, tc := range []struct {
		name, target string
		cfg          rings.RemoteConfig
	}{
		{"http-inferred", fx.httpURL, rings.RemoteConfig{}},
		{"http-explicit", fx.httpURL, rings.RemoteConfig{Transport: "http"}},
		{"wire-inferred", fx.wireAddr, rings.RemoteConfig{}},
		{"wire-scheme", "wire://" + fx.wireAddr, rings.RemoteConfig{}},
		{"wire-explicit", fx.wireAddr, rings.RemoteConfig{Transport: "wire"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rc, err := rings.DialRemote(tc.target, tc.cfg)
			if err != nil {
				t.Fatalf("DialRemote: %v", err)
			}
			defer rc.Close()

			h, err := rc.Health()
			if err != nil {
				t.Fatalf("Health: %v", err)
			}
			if h.Segments != 3 || h.Workers != 1 || h.Shards != 8 {
				t.Errorf("health = %+v", h)
			}

			got, err := rc.Check(queries...)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			for i := range got {
				got[i].Worker, want[i].Worker = 0, 0
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("decisions diverge from in-process:\n got %+v\nwant %+v", got, want)
			}

			dst := make([]rings.Decision, len(queries))
			if err := rc.CheckInto(queries, dst); err != nil {
				t.Fatalf("CheckInto: %v", err)
			}
			if !dst[0].Allowed || dst[1].Allowed {
				t.Errorf("CheckInto decisions: %+v", dst[:2])
			}
		})
	}
}

// TestDialRemoteTenantRouting checks cfg.Tenant scopes both transports
// to the named image, not the default one.
func TestDialRemoteTenantRouting(t *testing.T) {
	fx := startRemoteFixture(t)
	if _, err := fx.reg.Load("acct", []rings.Segment{
		{Name: "ledger", Size: 64, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 1, R2: 3, R3: 3}},
	}, tenant.TenantConfig{Workers: 1}); err != nil {
		t.Fatalf("Load acct: %v", err)
	}
	q := rings.Query{Op: rings.OpAccess, Ring: 2, Segment: "ledger", Kind: rings.AccessRead}

	for _, tc := range []struct {
		name, target string
		transport    string
	}{
		{"http", fx.httpURL, "http"},
		{"wire", fx.wireAddr, "wire"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rc, err := rings.DialRemote(tc.target, rings.RemoteConfig{Transport: tc.transport, Tenant: "acct"})
			if err != nil {
				t.Fatalf("DialRemote: %v", err)
			}
			defer rc.Close()
			if h, err := rc.Health(); err != nil || h.Segments != 1 {
				t.Fatalf("acct health = %+v, %v", h, err)
			}
			ds, err := rc.Check(q)
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if !ds[0].Allowed || ds[0].Err != "" {
				t.Errorf("ledger read in ring 2: %+v", ds[0])
			}

			// The default tenant must not resolve acct's segment name.
			def, err := rings.DialRemote(tc.target, rings.RemoteConfig{Transport: tc.transport})
			if err != nil {
				t.Fatalf("DialRemote default: %v", err)
			}
			defer def.Close()
			ds, err = def.Check(q)
			if err != nil {
				t.Fatalf("default Check: %v", err)
			}
			if ds[0].Err == "" {
				t.Errorf("default tenant resolved %q: %+v", q.Segment, ds[0])
			}
		})
	}
}

// TestDialRemoteErrors covers the transport vocabulary's edges: unknown
// transport names, unreachable wire targets, and remote error bodies
// surfacing as errors on both transports.
func TestDialRemoteErrors(t *testing.T) {
	fx := startRemoteFixture(t)
	if _, err := rings.DialRemote("localhost:1", rings.RemoteConfig{Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport: want error")
	}
	if _, err := rings.DialRemote("wire://127.0.0.1:1", rings.RemoteConfig{Timeout: time.Second}); err == nil {
		t.Error("unreachable wire target: want dial error")
	}
	if _, err := rings.DialRemote(fx.wireAddr, rings.RemoteConfig{Tenant: "ghost"}); err == nil {
		t.Error("unknown wire tenant: want handshake error")
	}

	for _, transport := range []string{"http", "wire"} {
		target := fx.httpURL
		if transport == "wire" {
			target = fx.wireAddr
		}
		rc, err := rings.DialRemote(target, rings.RemoteConfig{Transport: transport})
		if err != nil {
			t.Fatalf("DialRemote %s: %v", transport, err)
		}
		// An empty batch is a remote-side 400 on both transports.
		if err := rc.CheckInto(nil, nil); err == nil {
			t.Errorf("%s: empty batch: want error", transport)
		}
		rc.Close()
	}
}

// TestRemoteWireShedMapsToErrQueueFull checks the wire transport's shed
// frame folds back to the rings.ErrQueueFull in-process callers match
// on. A 1-worker, depth-1 tenant is plugged by oversized in-process
// batches while the remote client submits.
func TestRemoteWireShedMapsToErrQueueFull(t *testing.T) {
	reg := tenant.NewRegistry(tenant.Config{MaxTenants: 1, WorkerBudget: 1})
	tnt, err := reg.Load(tenant.DefaultTenant, checkerImage(), tenant.TenantConfig{
		Workers: 1, QueueDepth: 1, BatchLimit: 4096,
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ws := wire.NewServer(reg, wire.Config{})
	go ws.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
		reg.Close()
	}()

	rc, err := rings.DialRemote(ln.Addr().String(), rings.RemoteConfig{})
	if err != nil {
		t.Fatalf("DialRemote: %v", err)
	}
	defer rc.Close()

	big := make([]rings.Query, 4096)
	for i := range big {
		big[i] = rings.Query{Op: rings.OpAccess, Ring: 4, Segno: 0, Kind: rings.AccessRead}
	}
	// Three blockers keep the single worker busy AND the depth-1 queue
	// occupied; a lone blocker would drain the queue between its own
	// submissions and the remote client would never observe a shed.
	stop := make(chan struct{})
	var blockers sync.WaitGroup
	for i := 0; i < 3; i++ {
		blockers.Add(1)
		go func() {
			defer blockers.Done()
			dst := make([]rings.Decision, len(big))
			for {
				select {
				case <-stop:
					return
				default:
					tnt.SubmitInto(context.Background(), big, dst)
				}
			}
		}()
	}

	dst := make([]rings.Decision, 1)
	q := []rings.Query{{Op: rings.OpAccess, Ring: 4, Segment: "data", Kind: rings.AccessRead}}
	sawShed := false
	deadline := time.Now().Add(3 * time.Second)
	for !sawShed && time.Now().Before(deadline) {
		err := rc.CheckInto(q, dst)
		switch {
		case err == nil:
		case errors.Is(err, rings.ErrQueueFull):
			sawShed = true
		default:
			t.Fatalf("CheckInto: unexpected error %v", err)
		}
	}
	close(stop)
	blockers.Wait()
	if !sawShed {
		t.Skip("queue never filled; timing-dependent, not a correctness failure")
	}
}
