// Package rings is the public API of this reproduction of Schroeder
// and Saltzer's "A Hardware Architecture for Implementing Protection
// Rings" (SOSP 1971 / CACM 1972).
//
// It assembles programs written in the simulated machine's assembly
// language, builds bootable machine images with ring-bracketed
// segments, attaches the miniature supervisor, and runs them on either
// of two machines:
//
//   - the hardware-ring machine, implementing the paper's processor
//     (Figures 3-9): per-reference validation, effective rings,
//     trap-free downward calls and upward returns;
//   - the software-ring baseline, a Honeywell-645-style machine where
//     rings exist only as per-ring descriptor segments and every
//     crossing traps into a gatekeeper.
//
// A minimal session:
//
//	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice"}, src)
//	res, err := sys.Run(4, "main")
//	fmt.Print(res.Console)
//
// where src defines segments with .seg/.bracket/.gate directives and
// calls supervisor services through the sysgates segment. See the
// examples directory for complete programs.
package rings

import (
	"fmt"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/iosim"
	"repro/internal/softring"
	"repro/internal/sup"
	"repro/internal/trace"
	"repro/internal/trap"
	"repro/internal/word"
)

// Re-exported fundamental types: these are the vocabulary of the
// paper's mechanisms.
type (
	// Ring is a protection ring number, 0 (most privileged) through 7.
	Ring = core.Ring
	// Brackets is the R1 ≤ R2 ≤ R3 triple defining a segment's write,
	// read and execute brackets and gate extension.
	Brackets = core.Brackets
	// SegmentDef describes a non-assembled segment added to an image.
	SegmentDef = image.SegmentDef
	// ACLEntry grants a user access to a segment with given brackets.
	ACLEntry = acl.Entry
	// ACL is a segment's access control list.
	ACL = acl.List
	// Trap is a processor trap.
	Trap = trap.Trap
	// Word is a 36-bit machine word.
	Word = word.Word
	// StackRule selects the CALL stack-segment numbering rule.
	StackRule = cpu.StackRule
)

// Stack rules (Figure 8 and its footnote).
const (
	StackSegnoIsRing = cpu.StackSegnoIsRing
	StackDBRBase     = cpu.StackDBRBase
)

// NumRings is the number of protection rings (eight, as in Multics).
const NumRings = core.NumRings

// SystemConfig configures a System.
type SystemConfig struct {
	// User is the user name the process acts for (ACL checks); default
	// "user".
	User string
	// MemWords, MaxSegments, StackSize and StackRule configure the
	// machine image; zero values take the package defaults.
	MemWords    int
	MaxSegments int
	StackSize   int
	StackRule   StackRule
	// Validate disables the ring validation hardware when false and
	// ValidateSet is true (the T5 ablation).
	Validate    bool
	ValidateSet bool
	// Trace attaches an event trace buffer (retrievable via Trace).
	Trace bool
	// TraceLimit caps retained trace events (0 = unlimited).
	TraceLimit int
	// NoGates omits the standard sysgates supervisor gate segment.
	NoGates bool
	// Extra appends non-assembled segments to the image.
	Extra []SegmentDef
}

// System is an assembled, supervised, ready-to-run machine.
type System struct {
	Img *image.Image
	Sup *sup.Supervisor
	// Prog is the assembled program (symbol tables, exports).
	Prog *asm.Program

	traceBuf *trace.Buffer
}

// NewSystem assembles source (plus, unless NoGates, the standard
// supervisor gate segment), builds the machine image, links it, and
// attaches the supervisor.
func NewSystem(cfg SystemConfig, source string) (*System, error) {
	if cfg.User == "" {
		cfg.User = "user"
	}
	full := source
	if !cfg.NoGates {
		full = sup.GateSource + source
	}
	prog, err := asm.Assemble(full)
	if err != nil {
		return nil, err
	}
	var opt *cpu.Options
	if cfg.ValidateSet {
		o := cpu.DefaultOptions()
		o.Validate = cfg.Validate
		opt = &o
	}
	img, err := asm.BuildImage(image.Config{
		MemWords:    cfg.MemWords,
		MaxSegments: cfg.MaxSegments,
		StackSize:   cfg.StackSize,
		StackRule:   cfg.StackRule,
		CPUOptions:  opt,
	}, prog, cfg.Extra...)
	if err != nil {
		return nil, err
	}
	s := sup.Attach(img, cfg.User)
	sys := &System{Img: img, Sup: s, Prog: prog}
	if cfg.Trace {
		sys.traceBuf = &trace.Buffer{Limit: cfg.TraceLimit}
		img.CPU.SetTracer(sys.traceBuf)
	}
	return sys, nil
}

// RunResult summarizes an execution.
type RunResult struct {
	// Exited reports a clean exit through the exit service; ExitCode
	// is its argument.
	Exited   bool
	ExitCode int64
	// Halted reports a HLT stop (the other clean ending).
	Halted bool
	// Trap is the unrecovered trap that stopped the machine, if any.
	Trap *Trap
	// Console is the accumulated supervisor console output.
	Console string
	// Cycles and Steps are the simulated totals.
	Cycles uint64
	Steps  uint64
	// FinalRing is the ring of execution at the stop.
	FinalRing Ring
	// A is the accumulator at the stop.
	A int64
}

// Run starts execution at word 0 of the named segment in the given
// ring and runs to completion (bounded by maxSteps; 0 means a generous
// default).
func (sys *System) Run(ring Ring, segName string) (*RunResult, error) {
	return sys.RunAt(ring, segName, 0, 0)
}

// RunAt is Run with an explicit start word and step limit.
func (sys *System) RunAt(ring Ring, segName string, wordno uint32, maxSteps int) (*RunResult, error) {
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	if err := sys.Img.Start(ring, segName, wordno); err != nil {
		return nil, err
	}
	c := sys.Img.CPU
	reason, err := c.Run(maxSteps)
	res := &RunResult{
		Exited:    sys.Sup.Exited,
		ExitCode:  sys.Sup.ExitCode,
		Console:   sys.Sup.Console.String(),
		Cycles:    c.Cycles,
		Steps:     c.Steps(),
		FinalRing: c.IPR.Ring,
		A:         c.A.Int64(),
	}
	if err != nil {
		if t, ok := err.(*trap.Trap); ok {
			res.Trap = t
			return res, nil
		}
		return nil, err
	}
	if reason == cpu.StopLimit {
		return nil, fmt.Errorf("rings: program exceeded %d steps", maxSteps)
	}
	res.Halted = !res.Exited
	return res, nil
}

// CPU exposes the underlying processor for advanced use (registers,
// options, cycle accounting).
func (sys *System) CPU() *cpu.CPU { return sys.Img.CPU }

// Audit returns the supervisor's audit records.
func (sys *System) Audit() []string { return sys.Sup.Audit }

// Trace returns the recorded trace text (empty unless SystemConfig.
// Trace was set).
func (sys *System) Trace() string {
	if sys.traceBuf == nil {
		return ""
	}
	return sys.traceBuf.String()
}

// OnViolation installs a violation policy: return true to halt
// (default) or false to skip the faulting instruction and continue (the
// debugging-ring policy).
func (sys *System) OnViolation(f func(*Trap) bool) { sys.Sup.OnViolation = f }

// Segno returns the segment number of a named segment.
func (sys *System) Segno(name string) (uint32, error) { return sys.Img.Segno(name) }

// ReadWord reads a word from a named segment with operator-console
// privilege (no ring validation).
func (sys *System) ReadWord(name string, wordno uint32) (Word, error) {
	return sys.Img.ReadWord(name, wordno)
}

// WriteWord writes a word into a named segment with operator-console
// privilege.
func (sys *System) WriteWord(name string, wordno uint32, w Word) error {
	return sys.Img.WriteWord(name, wordno, w)
}

// Symbol returns the word number of a label in an assembled segment.
func (sys *System) Symbol(segName, label string) (uint32, error) {
	s := sys.Prog.Segment(segName)
	if s == nil {
		return 0, fmt.Errorf("rings: no assembled segment %q", segName)
	}
	off, ok := s.Symbols[label]
	if !ok {
		return 0, fmt.Errorf("rings: segment %q has no label %q", segName, label)
	}
	return off, nil
}

// Reserve registers an on-line segment for demand initiation under ACL
// control and returns its segment number.
func (sys *System) Reserve(name string, contents []Word, size int, gates uint32, list ACL) (uint32, error) {
	return sys.Sup.Reserve(&sup.OnlineSegment{
		Name: name, Contents: contents, Size: size, Gates: gates, ACL: list,
	})
}

// Baseline assembles the same kind of source for the 645-style
// software-ring machine. Supervisor gates are not available there (the
// baseline has no SVC services); programs end with hlt.
func Baseline(cfg SystemConfig, source string) (*softring.Machine, error) {
	prog, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	img, err := asm.BuildImage(image.Config{
		MemWords:    cfg.MemWords,
		MaxSegments: cfg.MaxSegments,
		StackSize:   cfg.StackSize,
	}, prog, cfg.Extra...)
	if err != nil {
		return nil, err
	}
	return softring.Wrap(img)
}

// Assemble exposes the assembler for tooling (listings, symbol
// inspection) without building an image.
func Assemble(source string) (*asm.Program, error) { return asm.Assemble(source) }

// StdMacros is the calling convention packaged as assembler macros
// (leafenter/leafexit, procenter/procexit, callg); prepend it to
// program source to use them.
const StdMacros = asm.StdMacros

// NewDeferredSystem is NewSystem with dynamic linking: every
// inter-segment link word starts unsnapped and is resolved by linkage
// fault on first reference, Multics style. The supervisor's audit log
// records each snap; Sup.LinksSnapped() counts them.
func NewDeferredSystem(user, source string) (*System, error) {
	if user == "" {
		user = "user"
	}
	s, prog, err := sup.BootDeferred(user, source)
	if err != nil {
		return nil, err
	}
	return &System{Img: s.Img, Sup: s, Prog: prog}, nil
}

// PackBrackets encodes flags and brackets for the setbrackets
// supervisor service.
func PackBrackets(read, write, execute bool, b Brackets) Word {
	return sup.PackBrackets(read, write, execute, b)
}

// I/O re-exports: the channel hardware behind the privileged SIO
// instruction.
type (
	// IOController routes SIO control blocks to attached devices.
	IOController = iosim.Controller
	// Typewriter is the console device of the paper's conclusion
	// example.
	Typewriter = iosim.Typewriter
)

// AttachTypewriter connects a typewriter at the given device number,
// creating the I/O controller if the machine has none, and returns it.
func (sys *System) AttachTypewriter(devno uint32) *Typewriter {
	ctl, ok := sys.Img.CPU.IO.(*iosim.Controller)
	if !ok || ctl == nil {
		ctl = iosim.NewController()
		sys.Img.CPU.IO = ctl
	}
	tty := &iosim.Typewriter{}
	ctl.Attach(devno, tty)
	return tty
}

// MakeIOCB builds the two words of an I/O control block.
func MakeIOCB(op, devno, count, bufSeg, bufWord uint32) (Word, Word) {
	return iosim.MakeIOCB(op, devno, count, bufSeg, bufWord)
}

// PackChars and UnpackChars convert between text and the machine's
// four-9-bit-characters-per-word convention.
func PackChars(s string) []Word       { return iosim.PackChars(s) }
func UnpackChars(words []Word) string { return iosim.UnpackChars(words) }
