package rings_test

import (
	"strings"
	"testing"

	"repro/rings"
)

const helloSrc = `
        .seg    main
        .bracket 4,4,4
        lia     72              ; 'H'
        stic    pr6|0,+1
        call    sysgates$putchar
        lia     0
        call    sysgates$exit
`

func TestNewSystemAndRun(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice"}, helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.ExitCode != 0 {
		t.Errorf("result: %+v", res)
	}
	if res.Console != "H" {
		t.Errorf("console %q", res.Console)
	}
	if res.Cycles == 0 || res.Steps == 0 {
		t.Error("no work accounted")
	}
}

func TestRunReportsTrap(t *testing.T) {
	sys2, err := rings.NewSystem(rings.SystemConfig{
		Extra: []rings.SegmentDef{{
			Name: "hidden", Size: 4, Read: true,
			Brackets: rings.Brackets{R1: 0, R2: 1, R3: 1},
		}},
	}, `
        .seg    main
        .bracket 4,4,4
        lda     *ptr
        hlt
ptr:    .its    4, hidden$base
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys2.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil {
		t.Fatal("no trap reported")
	}
	if res.Exited || res.Halted {
		t.Error("trap result marked clean")
	}
}

func TestTraceCapture(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{Trace: true}, helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(4, "main"); err != nil {
		t.Fatal(err)
	}
	tr := sys.Trace()
	if !strings.Contains(tr, "ring-switch") {
		t.Errorf("trace missing ring switch:\n%s", tr)
	}
	if !strings.Contains(tr, "fetch") {
		t.Error("trace missing fetches")
	}
}

func TestSymbolLookup(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{}, `
        .seg    main
        .bracket 4,4,4
        hlt
val:    .word   5
`)
	if err != nil {
		t.Fatal(err)
	}
	off, err := sys.Symbol("main", "val")
	if err != nil {
		t.Fatal(err)
	}
	w, err := sys.ReadWord("main", off)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int64() != 5 {
		t.Errorf("val = %d", w.Int64())
	}
	if _, err := sys.Symbol("main", "ghost"); err == nil {
		t.Error("ghost symbol resolved")
	}
	if _, err := sys.Symbol("ghost", "val"); err == nil {
		t.Error("ghost segment resolved")
	}
}

func TestOnViolationPolicy(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{
		Extra: []rings.SegmentDef{{
			Name: "guarded", Size: 4, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 3, R2: 5, R3: 5},
		}},
	}, `
        .seg    main
        .bracket 4,4,4
        lia     1
        sta     *ptr
        lia     9
        call    sysgates$exit
ptr:    .its    4, guarded$base
`)
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	sys.OnViolation(func(*rings.Trap) bool { caught++; return false })
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if caught != 1 || !res.Exited || res.ExitCode != 9 {
		t.Errorf("caught=%d res=%+v", caught, res)
	}
}

func TestBaselineMachine(t *testing.T) {
	m, err := rings.Baseline(rings.SystemConfig{}, `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    svc$entry
        hlt

        .seg    svc
        .bracket 1,1,5
        .gate   entry
entry:  eap5    *pr0|0
        spr6    pr5|0
        lia     3
        eap6    *pr5|0
        return  *pr6|0
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if m.CPU.A.Int64() != 3 {
		t.Errorf("A = %d", m.CPU.A.Int64())
	}
	if m.Crossings != 2 {
		t.Errorf("crossings = %d", m.Crossings)
	}
}

func TestReserveAndDemandLoad(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice"}, `
        .seg    main
        .bracket 4,4,4
        lda     *ptr
        call    sysgates$exit
ptr:    .its    4, 0
`)
	if err != nil {
		t.Fatal(err)
	}
	segno, err := sys.Reserve("lib", []rings.Word{rings.Word(21)}, 0, 0, rings.ACL{
		{User: "*", Read: true, Brackets: rings.Brackets{R1: 4, R2: 5, R3: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	off, err := sys.Symbol("main", "ptr")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := sys.ReadWord("main", off)
	if err := sys.WriteWord("main", off, raw.Deposit(18, 14, uint64(segno))); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.ExitCode != 21 {
		t.Errorf("res: %+v audit: %v", res, sys.Audit())
	}
}

func TestAssembleExposed(t *testing.T) {
	prog, err := rings.Assemble(".seg s\nnop\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Segment("s") == nil {
		t.Error("segment missing")
	}
	if _, err := rings.Assemble("frob\n"); err == nil {
		t.Error("bad source assembled")
	}
}

func TestValidationAblationConfig(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{
		Validate: false, ValidateSet: true,
		Extra: []rings.SegmentDef{{
			Name: "hidden", Size: 4, Read: true,
			Brackets: rings.Brackets{R1: 0, R2: 1, R3: 1},
		}},
	}, `
        .seg    main
        .bracket 4,4,4
        lda     *ptr
        hlt
ptr:    .its    4, hidden$base
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Errorf("ablated machine trapped: %v", res.Trap)
	}
}

func TestReExportsAndAccessors(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice"}, helloSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(4, "main"); err != nil {
		t.Fatal(err)
	}
	if sys.CPU() == nil {
		t.Error("CPU accessor nil")
	}
	if len(sys.Audit()) == 0 {
		t.Error("no audit entries after exit")
	}
	if sys.Trace() != "" {
		t.Error("trace nonempty without Trace config")
	}
	if _, err := sys.Segno("sysgates"); err != nil {
		t.Error("sysgates segno missing")
	}
	if _, err := sys.Segno("ghost"); err == nil {
		t.Error("ghost segno resolved")
	}
	w := rings.PackBrackets(true, false, true, rings.Brackets{R1: 1, R2: 2, R3: 3})
	if w.IsZero() {
		t.Error("PackBrackets zero")
	}
	if got := rings.UnpackChars(rings.PackChars("xyz")); got != "xyz" {
		t.Errorf("chars round trip: %q", got)
	}
	w0, w1 := rings.MakeIOCB(1, 2, 3, 4, 5)
	if w0.IsZero() || w1.IsZero() {
		t.Error("MakeIOCB zero words")
	}
}

// TestTypewriterThroughPublicAPI drives the whole I/O path through the
// façade: a ring-0 gate copies and SIOs a ring-4 message.
func TestTypewriterThroughPublicAPI(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice"}, `
        .seg    tty
        .bracket 0,0,5
        .access rwe
        .gate   write
write:  eap5    *pr0|0
        spr6    pr5|0
        sio     iocb
        eap6    *pr5|0
        return  *pr6|0
        .entry  iocb
iocb:   .word   0
        .its    0, msg
        .entry  msg
msg:    .string "ok!"

        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    tty$write
        lia     0
        call    sysgates$exit
`)
	if err != nil {
		t.Fatal(err)
	}
	tty := sys.AttachTypewriter(1)
	// Attaching twice reuses the controller.
	tty2 := sys.AttachTypewriter(2)
	_ = tty2
	iocbOff, err := sys.Symbol("tty", "iocb")
	if err != nil {
		t.Fatal(err)
	}
	ttySeg, _ := sys.Segno("tty")
	w0, _ := rings.MakeIOCB(1, 1, 1, ttySeg, iocbOff+1)
	// IOCB word 1 (the buffer pointer) was assembled as a .its aimed at
	// msg; word 0 carries op/device/count.
	if err := sys.WriteWord("tty", iocbOff, w0); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited {
		t.Fatalf("res: %+v audit %v", res, sys.Audit())
	}
	if got := tty.Printed.String(); got != "ok!" {
		t.Errorf("printed %q", got)
	}
}

func TestStdMacrosViaFacade(t *testing.T) {
	sys, err := rings.NewSystem(rings.SystemConfig{}, rings.StdMacros+`
        .seg    main
        .bracket 4,4,4
        lia     20
        callg   svc$half
        callg   sysgates$exit

        .seg    svc
        .bracket 1,1,5
        .gate   half
half:   leafenter
        ars     1
        leafexit
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.ExitCode != 10 {
		t.Errorf("res: %+v", res)
	}
}

func TestNewDeferredSystem(t *testing.T) {
	sys, err := rings.NewDeferredSystem("alice", rings.StdMacros+`
        .seg    main
        .bracket 4,4,4
        lia     5
        callg   lib$double
        callg   sysgates$exit

        .seg    lib
        .bracket 1,1,5
        .gate   double
double: leafenter
        als     1
        leafexit
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exited || res.ExitCode != 10 {
		t.Fatalf("res: %+v audit: %v", res, sys.Audit())
	}
	if sys.Sup.LinksSnapped() != 2 { // lib$double, sysgates$exit
		t.Errorf("snapped %d links", sys.Sup.LinksSnapped())
	}
}
