#!/bin/sh
# escape_baseline.sh — gate the compiler's escape analysis on the
# hot-path packages against a checked-in baseline.
#
# The ringvet hotpath analyzer bans allocating *constructs*; this gate
# watches the compiler's own escape decisions, which also move when an
# inlining or devirtualization change makes a previously stack-bound
# value escape. Together they bracket the 0 allocs/op invariant from
# both sides (source shape and codegen).
#
# Usage:
#   scripts/escape_baseline.sh check    # diff against docs/escape_baseline.txt (CI)
#   scripts/escape_baseline.sh update   # regenerate the baseline after a reviewed change
#
# Lines are normalized (line/column numbers stripped, deduplicated) so
# the baseline survives unrelated edits; a brand-new escape in a hot
# package still produces a new line and fails the check.

set -eu
cd "$(dirname "$0")/.."

BASELINE=docs/escape_baseline.txt
PACKAGES="./internal/service ./internal/mmu ./internal/tenant ./rings"

current() {
	# shellcheck disable=SC2086  # PACKAGES must word-split
	go build -gcflags='-m' $PACKAGES 2>&1 |
		grep -E 'escapes to heap|moved to heap' |
		sed -E 's|^\./||; s/:[0-9]+:[0-9]+:/:/' |
		grep -E '^(internal|rings)/' |
		sort -u
}

case "${1:-check}" in
update)
	current >"$BASELINE"
	echo "wrote $(wc -l <"$BASELINE") escape lines to $BASELINE"
	;;
check)
	got=$(mktemp)
	trap 'rm -f "$got"' EXIT
	current >"$got"
	if new=$(comm -13 "$BASELINE" "$got") && [ -n "$new" ]; then
		echo "new heap escapes in hot-path packages (not in $BASELINE):" >&2
		echo "$new" >&2
		echo "" >&2
		echo "If every new escape is intentional and off the decision path," >&2
		echo "regenerate with: scripts/escape_baseline.sh update" >&2
		exit 1
	fi
	echo "escape analysis matches $BASELINE"
	;;
*)
	echo "usage: $0 [check|update]" >&2
	exit 2
	;;
esac
